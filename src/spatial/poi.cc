#include "spatial/poi.h"

#include <algorithm>

#include "geom/rect.h"
#include "kernels/kernels.h"

namespace lbsq::spatial {

std::vector<PoiDistance> BruteForceKnn(const std::vector<Poi>& pois,
                                       geom::Point q, int k) {
  std::vector<PoiDistance> all;
  BruteForceKnn(pois, q, k, &all);
  return all;
}

void BruteForceKnn(const std::vector<Poi>& pois, geom::Point q, int k,
                   kernels::SlabScratch* scratch,
                   std::vector<PoiDistance>* out) {
  const size_t n = pois.size();
  scratch->slab.Assign(pois.data(), n);
  double* dist = scratch->DistFor(n);
  kernels::DistanceBatch(scratch->slab.xs(), scratch->slab.ys(), n, q.x, q.y,
                         dist);
  const size_t take = std::min<size_t>(static_cast<size_t>(k), n);
  uint32_t* idx = scratch->IdxFor(take);
  const size_t got =
      kernels::KSmallest(dist, scratch->slab.ids(), n, take, idx);
  out->clear();
  out->reserve(got);
  for (size_t j = 0; j < got; ++j) {
    out->push_back(PoiDistance{pois[idx[j]], dist[idx[j]]});
  }
}

void BruteForceKnn(const std::vector<Poi>& pois, geom::Point q, int k,
                   std::vector<PoiDistance>* out) {
  kernels::SlabScratch scratch;
  BruteForceKnn(pois, q, k, &scratch, out);
}

std::vector<Poi> BruteForceWindow(const std::vector<Poi>& pois,
                                  const geom::Rect& window) {
  kernels::SlabScratch scratch;
  std::vector<Poi> result;
  BruteForceWindow(pois, window, &scratch, &result);
  return result;
}

void BruteForceWindow(const std::vector<Poi>& pois, const geom::Rect& window,
                      kernels::SlabScratch* scratch, std::vector<Poi>* out) {
  const size_t n = pois.size();
  scratch->slab.Assign(pois.data(), n);
  uint32_t* idx = scratch->IdxFor(n);
  const size_t m =
      kernels::SelectInWindow(scratch->slab.xs(), scratch->slab.ys(), n,
                              window.x1, window.y1, window.x2, window.y2, idx);
  out->clear();
  out->reserve(m);
  for (size_t j = 0; j < m; ++j) out->push_back(pois[idx[j]]);
  std::sort(out->begin(), out->end(),
            [](const Poi& a, const Poi& b) { return a.id < b.id; });
}

}  // namespace lbsq::spatial
