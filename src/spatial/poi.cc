#include "spatial/poi.h"

#include <algorithm>

#include "geom/rect.h"

namespace lbsq::spatial {

std::vector<PoiDistance> BruteForceKnn(const std::vector<Poi>& pois,
                                       geom::Point q, int k) {
  std::vector<PoiDistance> all;
  all.reserve(pois.size());
  for (const Poi& p : pois) {
    all.push_back(PoiDistance{p, geom::Distance(p.pos, q)});
  }
  const size_t take = std::min<size_t>(static_cast<size_t>(k), all.size());
  std::partial_sort(all.begin(), all.begin() + static_cast<long>(take),
                    all.end());
  all.resize(take);
  return all;
}

std::vector<Poi> BruteForceWindow(const std::vector<Poi>& pois,
                                  const geom::Rect& window) {
  std::vector<Poi> result;
  for (const Poi& p : pois) {
    if (window.Contains(p.pos)) result.push_back(p);
  }
  std::sort(result.begin(), result.end(),
            [](const Poi& a, const Poi& b) { return a.id < b.id; });
  return result;
}

}  // namespace lbsq::spatial
