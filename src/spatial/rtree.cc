#include "spatial/rtree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "common/check.h"

namespace lbsq::spatial {

geom::Rect RTree::Node::Mbr() const {
  geom::Rect mbr;
  for (const Entry& e : entries) mbr = mbr.Union(e.mbr);
  return mbr;
}

RTree::RTree(int max_entries, int min_entries)
    : max_entries_(max_entries),
      min_entries_(min_entries > 0 ? min_entries : max_entries / 2) {
  LBSQ_CHECK(max_entries_ >= 4);
  LBSQ_CHECK(min_entries_ >= 1 && min_entries_ <= max_entries_ / 2);
}

void RTree::Insert(const Poi& poi) {
  const geom::Rect point_mbr{poi.pos.x, poi.pos.y, poi.pos.x, poi.pos.y};
  ++size_;
  if (!root_) {
    root_ = std::make_unique<Node>();
    root_->leaf = true;
  }
  // Descend to a leaf, choosing the subtree needing least MBR enlargement.
  std::vector<Node*> path;
  Node* node = root_.get();
  while (!node->leaf) {
    path.push_back(node);
    Entry* best = nullptr;
    double best_enlargement = 0.0;
    double best_area = 0.0;
    for (Entry& e : node->entries) {
      const double area = e.mbr.area();
      const double enlargement = e.mbr.Union(point_mbr).area() - area;
      if (best == nullptr || enlargement < best_enlargement ||
          (enlargement == best_enlargement && area < best_area)) {
        best = &e;
        best_enlargement = enlargement;
        best_area = area;
      }
    }
    LBSQ_CHECK(best != nullptr);
    best->mbr = best->mbr.Union(point_mbr);
    node = best->child.get();
  }
  node->entries.push_back(Entry{point_mbr, nullptr, poi});

  // Split overflowing nodes bottom-up along the insertion path.
  Node* current = node;
  std::unique_ptr<Node> sibling;
  if (static_cast<int>(current->entries.size()) > max_entries_) {
    sibling = SplitNode(current);
  }
  for (auto it = path.rbegin(); it != path.rend(); ++it) {
    Node* parent = *it;
    Entry* self = nullptr;
    for (Entry& e : parent->entries) {
      if (e.child.get() == current) {
        self = &e;
        break;
      }
    }
    LBSQ_CHECK(self != nullptr);
    self->mbr = current->Mbr();
    if (sibling) {
      geom::Rect mbr = sibling->Mbr();
      parent->entries.push_back(Entry{mbr, std::move(sibling), Poi{}});
      sibling = nullptr;
      if (static_cast<int>(parent->entries.size()) > max_entries_) {
        sibling = SplitNode(parent);
      }
    }
    current = parent;
  }
  if (sibling) {
    // Root split: grow the tree by one level.
    auto new_root = std::make_unique<Node>();
    new_root->leaf = false;
    geom::Rect left_mbr = root_->Mbr();
    geom::Rect right_mbr = sibling->Mbr();
    new_root->entries.push_back(Entry{left_mbr, std::move(root_), Poi{}});
    new_root->entries.push_back(Entry{right_mbr, std::move(sibling), Poi{}});
    root_ = std::move(new_root);
  }
}

void RTree::InsertAll(const std::vector<Poi>& pois) {
  for (const Poi& p : pois) Insert(p);
}

namespace {

// Splits `count` items into runs of at most `max_run`, rebalancing the tail
// so every run has at least `min_run` items (assumes count >= min_run or
// count == 0). Returns the run sizes.
std::vector<int> PackedRunSizes(int64_t count, int max_run, int min_run) {
  std::vector<int> sizes;
  int64_t remaining = count;
  while (remaining > 0) {
    if (remaining <= max_run) {
      sizes.push_back(static_cast<int>(remaining));
      remaining = 0;
    } else if (remaining - max_run < min_run) {
      // A full run would leave an under-full tail: split the remainder in
      // two roughly equal runs (each >= min_run since remaining > max_run
      // >= 2 * min_run).
      const int first = static_cast<int>(remaining / 2);
      sizes.push_back(first);
      sizes.push_back(static_cast<int>(remaining - first));
      remaining = 0;
    } else {
      sizes.push_back(max_run);
      remaining -= max_run;
    }
  }
  return sizes;
}

}  // namespace

RTree RTree::BulkLoadStr(const std::vector<Poi>& pois, int max_entries,
                         int min_entries) {
  RTree tree(max_entries, min_entries);
  tree.size_ = static_cast<int64_t>(pois.size());
  if (pois.empty()) return tree;

  const int capacity = tree.max_entries_;
  const int min_fill = tree.min_entries_;

  // Build the leaf level: sort by x, tile into vertical slabs of
  // ceil(sqrt(n / M)) columns, sort each slab by y, pack runs.
  std::vector<Poi> sorted = pois;
  std::sort(sorted.begin(), sorted.end(), [](const Poi& a, const Poi& b) {
    if (a.pos.x != b.pos.x) return a.pos.x < b.pos.x;
    return a.id < b.id;
  });
  const int64_t n = static_cast<int64_t>(sorted.size());
  const int64_t num_leaves = (n + capacity - 1) / capacity;
  const int64_t slabs = std::max<int64_t>(
      1, static_cast<int64_t>(std::ceil(std::sqrt(
             static_cast<double>(num_leaves)))));
  const int64_t slab_size =
      std::max<int64_t>(capacity, (n + slabs - 1) / slabs);

  // Slabs define only the order; runs are packed globally so min occupancy
  // holds for every node (a run may straddle a slab boundary at its tail).
  for (int64_t start = 0; start < n; start += slab_size) {
    const int64_t end = std::min(start + slab_size, n);
    std::sort(sorted.begin() + start, sorted.begin() + end,
              [](const Poi& a, const Poi& b) {
                if (a.pos.y != b.pos.y) return a.pos.y < b.pos.y;
                return a.id < b.id;
              });
  }
  std::vector<std::unique_ptr<Node>> level;
  {
    int64_t cursor = 0;
    for (int run : PackedRunSizes(n, capacity, min_fill)) {
      auto leaf = std::make_unique<Node>();
      leaf->leaf = true;
      for (int i = 0; i < run; ++i) {
        const Poi& poi = sorted[static_cast<size_t>(cursor++)];
        leaf->entries.push_back(Entry{
            geom::Rect{poi.pos.x, poi.pos.y, poi.pos.x, poi.pos.y}, nullptr,
            poi});
      }
      level.push_back(std::move(leaf));
    }
  }

  // Pack upper levels until one root remains, ordering nodes by their MBR
  // center with the same x-slab / y-run tiling.
  while (level.size() > 1) {
    std::sort(level.begin(), level.end(),
              [](const std::unique_ptr<Node>& a,
                 const std::unique_ptr<Node>& b) {
                return a->Mbr().center().x < b->Mbr().center().x;
              });
    const int64_t count = static_cast<int64_t>(level.size());
    const int64_t parents = (count + capacity - 1) / capacity;
    const int64_t pslabs = std::max<int64_t>(
        1, static_cast<int64_t>(std::ceil(std::sqrt(
               static_cast<double>(parents)))));
    const int64_t pslab_size =
        std::max<int64_t>(capacity, (count + pslabs - 1) / pslabs);
    for (int64_t start = 0; start < count; start += pslab_size) {
      const int64_t end = std::min(start + pslab_size, count);
      std::sort(level.begin() + start, level.begin() + end,
                [](const std::unique_ptr<Node>& a,
                   const std::unique_ptr<Node>& b) {
                  return a->Mbr().center().y < b->Mbr().center().y;
                });
    }
    std::vector<std::unique_ptr<Node>> next;
    int64_t cursor = 0;
    for (int run : PackedRunSizes(count, capacity, min_fill)) {
      auto parent = std::make_unique<Node>();
      parent->leaf = false;
      for (int i = 0; i < run; ++i) {
        std::unique_ptr<Node> child =
            std::move(level[static_cast<size_t>(cursor++)]);
        Entry entry;
        entry.mbr = child->Mbr();
        entry.child = std::move(child);
        parent->entries.push_back(std::move(entry));
      }
      next.push_back(std::move(parent));
    }
    level = std::move(next);
  }
  tree.root_ = std::move(level.front());
  return tree;
}

int RTree::Height() const {
  int height = 0;
  for (const Node* n = root_.get(); n != nullptr;
       n = n->leaf ? nullptr : n->entries.front().child.get()) {
    ++height;
  }
  return height;
}

void RTree::PickSeeds(const std::vector<Entry>& entries, size_t* a,
                      size_t* b) {
  double worst = -1.0;
  for (size_t i = 0; i < entries.size(); ++i) {
    for (size_t j = i + 1; j < entries.size(); ++j) {
      const double dead = entries[i].mbr.Union(entries[j].mbr).area() -
                          entries[i].mbr.area() - entries[j].mbr.area();
      if (dead > worst) {
        worst = dead;
        *a = i;
        *b = j;
      }
    }
  }
}

std::unique_ptr<RTree::Node> RTree::SplitNode(Node* node) const {
  std::vector<Entry> all = std::move(node->entries);
  node->entries.clear();
  auto sibling = std::make_unique<Node>();
  sibling->leaf = node->leaf;

  size_t seed_a = 0, seed_b = 1;
  PickSeeds(all, &seed_a, &seed_b);
  geom::Rect mbr_a = all[seed_a].mbr;
  geom::Rect mbr_b = all[seed_b].mbr;
  node->entries.push_back(std::move(all[seed_a]));
  sibling->entries.push_back(std::move(all[seed_b]));
  // Erase the larger index first so the smaller index stays valid.
  all.erase(all.begin() + static_cast<long>(std::max(seed_a, seed_b)));
  all.erase(all.begin() + static_cast<long>(std::min(seed_a, seed_b)));

  while (!all.empty()) {
    const size_t remaining = all.size();
    const size_t need_a =
        min_entries_ > static_cast<int>(node->entries.size())
            ? static_cast<size_t>(min_entries_) - node->entries.size()
            : 0;
    const size_t need_b =
        min_entries_ > static_cast<int>(sibling->entries.size())
            ? static_cast<size_t>(min_entries_) - sibling->entries.size()
            : 0;
    if (need_a == remaining) {
      for (Entry& e : all) {
        mbr_a = mbr_a.Union(e.mbr);
        node->entries.push_back(std::move(e));
      }
      break;
    }
    if (need_b == remaining) {
      for (Entry& e : all) {
        mbr_b = mbr_b.Union(e.mbr);
        sibling->entries.push_back(std::move(e));
      }
      break;
    }
    // PickNext: the entry with the strongest preference for one group.
    size_t pick = 0;
    double best_diff = -1.0;
    for (size_t i = 0; i < all.size(); ++i) {
      const double da = mbr_a.Union(all[i].mbr).area() - mbr_a.area();
      const double db = mbr_b.Union(all[i].mbr).area() - mbr_b.area();
      const double diff = std::abs(da - db);
      if (diff > best_diff) {
        best_diff = diff;
        pick = i;
      }
    }
    const double da = mbr_a.Union(all[pick].mbr).area() - mbr_a.area();
    const double db = mbr_b.Union(all[pick].mbr).area() - mbr_b.area();
    bool to_a;
    if (da != db) {
      to_a = da < db;
    } else if (mbr_a.area() != mbr_b.area()) {
      to_a = mbr_a.area() < mbr_b.area();
    } else {
      to_a = node->entries.size() <= sibling->entries.size();
    }
    if (to_a) {
      mbr_a = mbr_a.Union(all[pick].mbr);
      node->entries.push_back(std::move(all[pick]));
    } else {
      mbr_b = mbr_b.Union(all[pick].mbr);
      sibling->entries.push_back(std::move(all[pick]));
    }
    all.erase(all.begin() + static_cast<long>(pick));
  }
  return sibling;
}

std::vector<Poi> RTree::WindowQuery(const geom::Rect& window) const {
  node_accesses_ = 0;
  std::vector<Poi> result;
  if (!root_) return result;
  std::vector<const Node*> stack = {root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    ++node_accesses_;
    for (const Entry& e : node->entries) {
      if (!window.Intersects(e.mbr)) continue;
      if (node->leaf) {
        result.push_back(e.poi);
      } else {
        stack.push_back(e.child.get());
      }
    }
  }
  std::sort(result.begin(), result.end(),
            [](const Poi& a, const Poi& b) { return a.id < b.id; });
  return result;
}

std::vector<PoiDistance> RTree::KnnBestFirst(geom::Point q, int k) const {
  node_accesses_ = 0;
  std::vector<PoiDistance> result;
  if (!root_ || k <= 0) return result;

  struct QueueItem {
    double distance;
    int64_t tie;       // POI id for objects, -1 for nodes
    const Node* node;  // null for object items
    Poi poi;
  };
  auto cmp = [](const QueueItem& a, const QueueItem& b) {
    if (a.distance != b.distance) return a.distance > b.distance;
    return a.tie > b.tie;
  };
  std::priority_queue<QueueItem, std::vector<QueueItem>, decltype(cmp)> queue(
      cmp);
  queue.push(QueueItem{0.0, -1, root_.get(), Poi{}});
  while (!queue.empty()) {
    QueueItem item = queue.top();
    queue.pop();
    if (item.node == nullptr) {
      result.push_back(PoiDistance{item.poi, item.distance});
      if (static_cast<int>(result.size()) == k) break;
      continue;
    }
    ++node_accesses_;
    for (const Entry& e : item.node->entries) {
      if (item.node->leaf) {
        queue.push(QueueItem{geom::Distance(e.poi.pos, q), e.poi.id, nullptr,
                             e.poi});
      } else {
        queue.push(QueueItem{e.mbr.MinDistance(q), -1, e.child.get(), Poi{}});
      }
    }
  }
  return result;
}

std::vector<PoiDistance> RTree::KnnDepthFirst(geom::Point q, int k) const {
  node_accesses_ = 0;
  std::vector<PoiDistance> best;  // kept sorted ascending, size <= k
  if (!root_ || k <= 0) return best;

  auto worst = [&best, k]() {
    return static_cast<int>(best.size()) < k
               ? std::numeric_limits<double>::infinity()
               : best.back().distance;
  };
  // Recursive branch-and-bound with MINDIST-ordered children.
  auto visit = [&](auto&& self, const Node* node) -> void {
    ++node_accesses_;
    if (node->leaf) {
      for (const Entry& e : node->entries) {
        const double d = geom::Distance(e.poi.pos, q);
        const PoiDistance candidate{e.poi, d};
        if (static_cast<int>(best.size()) < k || candidate < best.back()) {
          best.insert(std::upper_bound(best.begin(), best.end(), candidate),
                      candidate);
          if (static_cast<int>(best.size()) > k) best.pop_back();
        }
      }
      return;
    }
    std::vector<std::pair<double, const Node*>> children;
    children.reserve(node->entries.size());
    for (const Entry& e : node->entries) {
      children.emplace_back(e.mbr.MinDistance(q), e.child.get());
    }
    std::sort(children.begin(), children.end());
    for (const auto& [mindist, child] : children) {
      if (mindist > worst()) break;  // prune: list is sorted by MINDIST
      self(self, child);
    }
  };
  visit(visit, root_.get());
  return best;
}

void RTree::CheckInvariants() const {
  if (!root_) return;
  // Uniform leaf depth and MBR containment; entry-count bounds everywhere
  // except the root.
  int leaf_depth = -1;
  auto visit = [&](auto&& self, const Node* node, int depth,
                   bool is_root) -> void {
    if (!is_root) {
      LBSQ_CHECK(static_cast<int>(node->entries.size()) >= min_entries_);
    }
    LBSQ_CHECK(static_cast<int>(node->entries.size()) <= max_entries_);
    if (node->leaf) {
      if (leaf_depth == -1) leaf_depth = depth;
      LBSQ_CHECK_EQ(leaf_depth, depth);
      return;
    }
    for (const Entry& e : node->entries) {
      LBSQ_CHECK(e.child != nullptr);
      LBSQ_CHECK(e.mbr.ContainsRect(e.child->Mbr()));
      LBSQ_CHECK(e.mbr == e.child->Mbr());
      self(self, e.child.get(), depth + 1, false);
    }
  };
  visit(visit, root_.get(), 0, true);
}

}  // namespace lbsq::spatial
