#ifndef LBSQ_SPATIAL_RSTAR_TREE_H_
#define LBSQ_SPATIAL_RSTAR_TREE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "geom/point.h"
#include "geom/rect.h"
#include "spatial/poi.h"

/// \file
/// R*-tree (Beckmann, Kriegel, Schneider & Seeger — the paper's reference
/// [2]): the R-tree variant with overlap-minimizing subtree choice, the
/// margin/overlap-driven topological split, and forced reinsertion. Provided
/// as a higher-quality alternative to the Guttman tree for the server-side
/// database; the micro-benchmarks compare node accesses between the two.
///
/// Simplification kept deliberate and documented: forced reinsertion is
/// applied at the leaf level only (the level where it pays; reinserting
/// internal entries adds bookkeeping with marginal benefit for point data).

namespace lbsq::spatial {

/// Dynamic R*-tree over POIs (points).
class RStarTree {
 public:
  /// Node fan-out; min_entries defaults to 40% of max as in the R* paper.
  explicit RStarTree(int max_entries = 8, int min_entries = 0);

  RStarTree(const RStarTree&) = delete;
  RStarTree& operator=(const RStarTree&) = delete;

  /// Inserts one POI.
  void Insert(const Poi& poi);

  /// Inserts a batch of POIs.
  void InsertAll(const std::vector<Poi>& pois);

  /// Number of stored POIs.
  int64_t size() const { return size_; }

  /// Height of the tree (0 when empty).
  int Height() const;

  /// All POIs inside `window` (closed), sorted by id.
  std::vector<Poi> WindowQuery(const geom::Rect& window) const;

  /// k nearest neighbors via best-first distance browsing.
  std::vector<PoiDistance> Knn(geom::Point q, int k) const;

  /// Node accesses of the most recent query.
  int64_t last_node_accesses() const { return node_accesses_; }

  /// Validates structural invariants; aborts on violation (for tests).
  void CheckInvariants() const;

 private:
  struct Node;
  struct Entry {
    geom::Rect mbr;
    std::unique_ptr<Node> child;  // null for leaf entries
    Poi poi;
  };
  struct Node {
    bool leaf = true;
    std::vector<Entry> entries;
    geom::Rect Mbr() const;
  };

  /// Core insertion of one leaf entry; `allow_reinsert` guards against
  /// reinsertion recursion.
  void InsertLeafEntry(Entry entry, bool allow_reinsert);
  Node* ChooseSubtree(const geom::Rect& mbr, std::vector<Node*>* path);
  std::unique_ptr<Node> SplitNode(Node* node) const;
  /// Removes the 30% of `node`'s entries farthest from its MBR center and
  /// returns them for reinsertion.
  std::vector<Entry> TakeReinsertVictims(Node* node) const;
  void PropagateUp(std::vector<Node*>* path, Node* child,
                   std::unique_ptr<Node> sibling);

  int max_entries_;
  int min_entries_;
  int64_t size_ = 0;
  std::unique_ptr<Node> root_;
  mutable int64_t node_accesses_ = 0;
};

}  // namespace lbsq::spatial

#endif  // LBSQ_SPATIAL_RSTAR_TREE_H_
