#ifndef LBSQ_SPATIAL_GENERATORS_H_
#define LBSQ_SPATIAL_GENERATORS_H_

#include <vector>

#include "common/rng.h"
#include "geom/rect.h"
#include "spatial/poi.h"

/// \file
/// Synthetic workload generators. The paper derives its parameter sets from
/// real-world densities (vehicles and gas stations in Southern California)
/// and observes that common POI types are Poisson distributed; these
/// generators synthesize point sets with exactly those statistics.

namespace lbsq::spatial {

/// Homogeneous spatial Poisson process: the point count is Poisson with mean
/// `density * area(world)` and positions are i.i.d. uniform. Ids are
/// assigned 0..n-1.
std::vector<Poi> GeneratePoissonPois(Rng* rng, const geom::Rect& world,
                                     double density);

/// Exactly `count` i.i.d. uniform POIs (the conditional Poisson process given
/// its count — what the paper's fixed POINumber corresponds to).
std::vector<Poi> GenerateUniformPois(Rng* rng, const geom::Rect& world,
                                     int64_t count);

/// Neyman-Scott clustered process: `num_clusters` parent centers placed
/// uniformly, each spawning Poisson(`mean_per_cluster`) children displaced by
/// an isotropic normal with standard deviation `spread`. Children falling
/// outside the world are clamped to its border. Models downtown-style POI
/// clustering for the robustness experiments.
std::vector<Poi> GenerateClusteredPois(Rng* rng, const geom::Rect& world,
                                       int num_clusters,
                                       double mean_per_cluster, double spread);

/// Metro-scale mix for the sharding experiments: exactly `count` POIs, a
/// `clustered_fraction` of them drawn from a Neyman-Scott process
/// (`num_clusters` downtown cores, spread = `cluster_spread`) and the rest
/// i.i.d. uniform background. The clustered portion's per-cluster mean is
/// derived from the requested total, and the process is re-drawn from the
/// same stream until the exact count is met (trim/top-up on the uniform
/// tail), so the output size is deterministic. Ids are 0..count-1 in
/// generation order.
std::vector<Poi> GenerateMetroPois(Rng* rng, const geom::Rect& world,
                                   int64_t count, double clustered_fraction,
                                   int num_clusters, double cluster_spread);

}  // namespace lbsq::spatial

#endif  // LBSQ_SPATIAL_GENERATORS_H_
