#include "spatial/rstar_tree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "common/check.h"

namespace lbsq::spatial {

namespace {

double OverlapArea(const geom::Rect& a, const geom::Rect& b) {
  return a.Intersection(b).area();
}

double Margin(const geom::Rect& r) { return 2.0 * (r.width() + r.height()); }

}  // namespace

geom::Rect RStarTree::Node::Mbr() const {
  geom::Rect mbr;
  for (const Entry& e : entries) mbr = mbr.Union(e.mbr);
  return mbr;
}

RStarTree::RStarTree(int max_entries, int min_entries)
    : max_entries_(max_entries),
      min_entries_(min_entries > 0 ? min_entries
                                   : std::max(2, max_entries * 2 / 5)) {
  LBSQ_CHECK(max_entries_ >= 4);
  LBSQ_CHECK(min_entries_ >= 2 && min_entries_ <= max_entries_ / 2);
}

void RStarTree::Insert(const Poi& poi) {
  Entry entry;
  entry.mbr = geom::Rect{poi.pos.x, poi.pos.y, poi.pos.x, poi.pos.y};
  entry.poi = poi;
  ++size_;
  InsertLeafEntry(std::move(entry), /*allow_reinsert=*/true);
}

void RStarTree::InsertAll(const std::vector<Poi>& pois) {
  for (const Poi& p : pois) Insert(p);
}

RStarTree::Node* RStarTree::ChooseSubtree(const geom::Rect& mbr,
                                          std::vector<Node*>* path) {
  Node* node = root_.get();
  while (!node->leaf) {
    path->push_back(node);
    Entry* best = nullptr;
    const bool children_are_leaves = node->entries.front().child->leaf;
    double best_primary = 0.0;
    double best_secondary = 0.0;
    double best_area = 0.0;
    for (Entry& e : node->entries) {
      const geom::Rect enlarged = e.mbr.Union(mbr);
      const double area_enlargement = enlarged.area() - e.mbr.area();
      double primary;
      if (children_are_leaves) {
        // Overlap enlargement of this entry against its siblings.
        double overlap_before = 0.0;
        double overlap_after = 0.0;
        for (const Entry& other : node->entries) {
          if (&other == &e) continue;
          overlap_before += OverlapArea(e.mbr, other.mbr);
          overlap_after += OverlapArea(enlarged, other.mbr);
        }
        primary = overlap_after - overlap_before;
      } else {
        primary = area_enlargement;
      }
      if (best == nullptr || primary < best_primary ||
          (primary == best_primary &&
           (area_enlargement < best_secondary ||
            (area_enlargement == best_secondary && e.mbr.area() < best_area)))) {
        best = &e;
        best_primary = primary;
        best_secondary = area_enlargement;
        best_area = e.mbr.area();
      }
    }
    LBSQ_CHECK(best != nullptr);
    best->mbr = best->mbr.Union(mbr);
    node = best->child.get();
  }
  return node;
}

std::vector<RStarTree::Entry> RStarTree::TakeReinsertVictims(
    Node* node) const {
  const geom::Point center = node->Mbr().center();
  std::vector<size_t> order(node->entries.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return geom::DistanceSquared(node->entries[a].mbr.center(), center) >
           geom::DistanceSquared(node->entries[b].mbr.center(), center);
  });
  const size_t take = std::max<size_t>(1, node->entries.size() * 3 / 10);
  std::vector<Entry> victims;
  std::vector<bool> doomed(node->entries.size(), false);
  for (size_t i = 0; i < take; ++i) doomed[order[i]] = true;
  std::vector<Entry> kept;
  for (size_t i = 0; i < node->entries.size(); ++i) {
    if (doomed[i]) {
      victims.push_back(std::move(node->entries[i]));
    } else {
      kept.push_back(std::move(node->entries[i]));
    }
  }
  node->entries = std::move(kept);
  return victims;
}

std::unique_ptr<RStarTree::Node> RStarTree::SplitNode(Node* node) const {
  // R* topological split: pick the axis with the minimum total margin over
  // all candidate distributions, then the distribution with minimum overlap
  // (ties: minimum total area).
  std::vector<Entry> all = std::move(node->entries);
  node->entries.clear();
  const int total = static_cast<int>(all.size());
  const int dist_count = total - 2 * min_entries_ + 1;
  LBSQ_CHECK(dist_count >= 1);

  struct Candidate {
    int axis = 0;        // 0 = x, 1 = y
    bool by_upper = false;
    int split_at = 0;    // first group size = min_entries_ + split_at
  };
  double best_axis_margin[2] = {0.0, 0.0};

  auto sort_by = [&all](int axis, bool by_upper) {
    std::sort(all.begin(), all.end(),
              [axis, by_upper](const Entry& a, const Entry& b) {
                const double ka = axis == 0 ? (by_upper ? a.mbr.x2 : a.mbr.x1)
                                            : (by_upper ? a.mbr.y2 : a.mbr.y1);
                const double kb = axis == 0 ? (by_upper ? b.mbr.x2 : b.mbr.x1)
                                            : (by_upper ? b.mbr.y2 : b.mbr.y1);
                if (ka != kb) return ka < kb;
                return a.poi.id < b.poi.id;
              });
  };

  // Evaluate margins per axis.
  for (int axis = 0; axis < 2; ++axis) {
    double margin_sum = 0.0;
    for (const bool by_upper : {false, true}) {
      sort_by(axis, by_upper);
      // Prefix/suffix MBRs.
      std::vector<geom::Rect> prefix(all.size());
      std::vector<geom::Rect> suffix(all.size());
      geom::Rect acc;
      for (size_t i = 0; i < all.size(); ++i) {
        acc = acc.Union(all[i].mbr);
        prefix[i] = acc;
      }
      acc = geom::Rect{};
      for (size_t i = all.size(); i-- > 0;) {
        acc = acc.Union(all[i].mbr);
        suffix[i] = acc;
      }
      for (int d = 0; d < dist_count; ++d) {
        const int first = min_entries_ + d;
        margin_sum += Margin(prefix[static_cast<size_t>(first - 1)]) +
                      Margin(suffix[static_cast<size_t>(first)]);
      }
    }
    best_axis_margin[axis] = margin_sum;
  }
  const int axis = best_axis_margin[0] <= best_axis_margin[1] ? 0 : 1;

  // On the chosen axis, pick the distribution (over both sort orders) with
  // minimal overlap, ties by minimal combined area.
  Candidate best;
  double best_overlap = std::numeric_limits<double>::infinity();
  double best_area = std::numeric_limits<double>::infinity();
  for (const bool by_upper : {false, true}) {
    sort_by(axis, by_upper);
    std::vector<geom::Rect> prefix(all.size());
    std::vector<geom::Rect> suffix(all.size());
    geom::Rect acc;
    for (size_t i = 0; i < all.size(); ++i) {
      acc = acc.Union(all[i].mbr);
      prefix[i] = acc;
    }
    acc = geom::Rect{};
    for (size_t i = all.size(); i-- > 0;) {
      acc = acc.Union(all[i].mbr);
      suffix[i] = acc;
    }
    for (int d = 0; d < dist_count; ++d) {
      const int first = min_entries_ + d;
      const geom::Rect& a = prefix[static_cast<size_t>(first - 1)];
      const geom::Rect& b = suffix[static_cast<size_t>(first)];
      const double overlap = OverlapArea(a, b);
      const double area = a.area() + b.area();
      if (overlap < best_overlap ||
          (overlap == best_overlap && area < best_area)) {
        best_overlap = overlap;
        best_area = area;
        best = Candidate{axis, by_upper, d};
      }
    }
  }

  sort_by(best.axis, best.by_upper);
  const int first = min_entries_ + best.split_at;
  auto sibling = std::make_unique<Node>();
  sibling->leaf = node->leaf;
  for (int i = 0; i < total; ++i) {
    if (i < first) {
      node->entries.push_back(std::move(all[static_cast<size_t>(i)]));
    } else {
      sibling->entries.push_back(std::move(all[static_cast<size_t>(i)]));
    }
  }
  return sibling;
}

void RStarTree::PropagateUp(std::vector<Node*>* path, Node* child,
                            std::unique_ptr<Node> sibling) {
  Node* current = child;
  for (auto it = path->rbegin(); it != path->rend(); ++it) {
    Node* parent = *it;
    Entry* self = nullptr;
    for (Entry& e : parent->entries) {
      if (e.child.get() == current) {
        self = &e;
        break;
      }
    }
    LBSQ_CHECK(self != nullptr);
    self->mbr = current->Mbr();
    if (sibling) {
      Entry entry;
      entry.mbr = sibling->Mbr();
      entry.child = std::move(sibling);
      parent->entries.push_back(std::move(entry));
      sibling = nullptr;
      if (static_cast<int>(parent->entries.size()) > max_entries_) {
        sibling = SplitNode(parent);
      }
    }
    current = parent;
  }
  if (sibling) {
    auto new_root = std::make_unique<Node>();
    new_root->leaf = false;
    Entry left;
    left.mbr = root_->Mbr();
    left.child = std::move(root_);
    Entry right;
    right.mbr = sibling->Mbr();
    right.child = std::move(sibling);
    new_root->entries.push_back(std::move(left));
    new_root->entries.push_back(std::move(right));
    root_ = std::move(new_root);
  }
}

void RStarTree::InsertLeafEntry(Entry entry, bool allow_reinsert) {
  if (!root_) {
    root_ = std::make_unique<Node>();
    root_->leaf = true;
  }
  std::vector<Node*> path;
  const geom::Rect mbr = entry.mbr;
  Node* leaf = ChooseSubtree(mbr, &path);
  leaf->entries.push_back(std::move(entry));

  if (static_cast<int>(leaf->entries.size()) <= max_entries_) {
    PropagateUp(&path, leaf, nullptr);
    return;
  }
  if (allow_reinsert && leaf != root_.get()) {
    // Forced reinsertion (leaf level): evict the 30% farthest-from-center
    // entries and insert them afresh from the root.
    std::vector<Entry> victims = TakeReinsertVictims(leaf);
    PropagateUp(&path, leaf, nullptr);
    for (Entry& v : victims) {
      InsertLeafEntry(std::move(v), /*allow_reinsert=*/false);
    }
    return;
  }
  std::unique_ptr<Node> sibling = SplitNode(leaf);
  PropagateUp(&path, leaf, std::move(sibling));
}

int RStarTree::Height() const {
  int height = 0;
  for (const Node* n = root_.get(); n != nullptr;
       n = n->leaf ? nullptr : n->entries.front().child.get()) {
    ++height;
  }
  return height;
}

std::vector<Poi> RStarTree::WindowQuery(const geom::Rect& window) const {
  node_accesses_ = 0;
  std::vector<Poi> result;
  if (!root_) return result;
  std::vector<const Node*> stack = {root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    ++node_accesses_;
    for (const Entry& e : node->entries) {
      if (!window.Intersects(e.mbr)) continue;
      if (node->leaf) {
        result.push_back(e.poi);
      } else {
        stack.push_back(e.child.get());
      }
    }
  }
  std::sort(result.begin(), result.end(),
            [](const Poi& a, const Poi& b) { return a.id < b.id; });
  return result;
}

std::vector<PoiDistance> RStarTree::Knn(geom::Point q, int k) const {
  node_accesses_ = 0;
  std::vector<PoiDistance> result;
  if (!root_ || k <= 0) return result;
  struct QueueItem {
    double distance;
    int64_t tie;
    const Node* node;
    Poi poi;
  };
  auto cmp = [](const QueueItem& a, const QueueItem& b) {
    if (a.distance != b.distance) return a.distance > b.distance;
    return a.tie > b.tie;
  };
  std::priority_queue<QueueItem, std::vector<QueueItem>, decltype(cmp)> queue(
      cmp);
  queue.push(QueueItem{0.0, -1, root_.get(), Poi{}});
  while (!queue.empty()) {
    QueueItem item = queue.top();
    queue.pop();
    if (item.node == nullptr) {
      result.push_back(PoiDistance{item.poi, item.distance});
      if (static_cast<int>(result.size()) == k) break;
      continue;
    }
    ++node_accesses_;
    for (const Entry& e : item.node->entries) {
      if (item.node->leaf) {
        queue.push(QueueItem{geom::Distance(e.poi.pos, q), e.poi.id, nullptr,
                             e.poi});
      } else {
        queue.push(QueueItem{e.mbr.MinDistance(q), -1, e.child.get(), Poi{}});
      }
    }
  }
  return result;
}

void RStarTree::CheckInvariants() const {
  if (!root_) return;
  int leaf_depth = -1;
  int64_t counted = 0;
  auto visit = [&](auto&& self, const Node* node, int depth,
                   bool is_root) -> void {
    if (!is_root) {
      LBSQ_CHECK(static_cast<int>(node->entries.size()) >= min_entries_);
    }
    LBSQ_CHECK(static_cast<int>(node->entries.size()) <= max_entries_);
    if (node->leaf) {
      if (leaf_depth == -1) leaf_depth = depth;
      LBSQ_CHECK_EQ(leaf_depth, depth);
      counted += static_cast<int64_t>(node->entries.size());
      return;
    }
    for (const Entry& e : node->entries) {
      LBSQ_CHECK(e.child != nullptr);
      LBSQ_CHECK(e.mbr == e.child->Mbr());
      self(self, e.child.get(), depth + 1, false);
    }
  };
  visit(visit, root_.get(), 0, true);
  LBSQ_CHECK_EQ(counted, size_);
}

}  // namespace lbsq::spatial
