#include "spatial/generators.h"

#include <algorithm>

#include "common/check.h"

namespace lbsq::spatial {

std::vector<Poi> GeneratePoissonPois(Rng* rng, const geom::Rect& world,
                                     double density) {
  LBSQ_CHECK(!world.empty());
  LBSQ_CHECK(density >= 0.0);
  const int64_t count = rng->Poisson(density * world.area());
  return GenerateUniformPois(rng, world, count);
}

std::vector<Poi> GenerateUniformPois(Rng* rng, const geom::Rect& world,
                                     int64_t count) {
  LBSQ_CHECK(!world.empty());
  LBSQ_CHECK(count >= 0);
  std::vector<Poi> pois;
  pois.reserve(static_cast<size_t>(count));
  for (int64_t i = 0; i < count; ++i) {
    pois.push_back(Poi{i,
                       {rng->Uniform(world.x1, world.x2),
                        rng->Uniform(world.y1, world.y2)}});
  }
  return pois;
}

std::vector<Poi> GenerateClusteredPois(Rng* rng, const geom::Rect& world,
                                       int num_clusters,
                                       double mean_per_cluster,
                                       double spread) {
  LBSQ_CHECK(!world.empty());
  LBSQ_CHECK(num_clusters >= 0);
  LBSQ_CHECK(mean_per_cluster >= 0.0);
  LBSQ_CHECK(spread >= 0.0);
  std::vector<Poi> pois;
  int64_t next_id = 0;
  for (int c = 0; c < num_clusters; ++c) {
    const geom::Point center{rng->Uniform(world.x1, world.x2),
                             rng->Uniform(world.y1, world.y2)};
    const int64_t children = rng->Poisson(mean_per_cluster);
    for (int64_t i = 0; i < children; ++i) {
      geom::Point p{center.x + rng->Normal(0.0, spread),
                    center.y + rng->Normal(0.0, spread)};
      p.x = std::clamp(p.x, world.x1, world.x2);
      p.y = std::clamp(p.y, world.y1, world.y2);
      pois.push_back(Poi{next_id++, p});
    }
  }
  return pois;
}

}  // namespace lbsq::spatial
