#include "spatial/generators.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace lbsq::spatial {

std::vector<Poi> GeneratePoissonPois(Rng* rng, const geom::Rect& world,
                                     double density) {
  LBSQ_CHECK(!world.empty());
  LBSQ_CHECK(density >= 0.0);
  const int64_t count = rng->Poisson(density * world.area());
  return GenerateUniformPois(rng, world, count);
}

std::vector<Poi> GenerateUniformPois(Rng* rng, const geom::Rect& world,
                                     int64_t count) {
  LBSQ_CHECK(!world.empty());
  LBSQ_CHECK(count >= 0);
  std::vector<Poi> pois;
  pois.reserve(static_cast<size_t>(count));
  for (int64_t i = 0; i < count; ++i) {
    pois.push_back(Poi{i,
                       {rng->Uniform(world.x1, world.x2),
                        rng->Uniform(world.y1, world.y2)}});
  }
  return pois;
}

std::vector<Poi> GenerateClusteredPois(Rng* rng, const geom::Rect& world,
                                       int num_clusters,
                                       double mean_per_cluster,
                                       double spread) {
  LBSQ_CHECK(!world.empty());
  LBSQ_CHECK(num_clusters >= 0);
  LBSQ_CHECK(mean_per_cluster >= 0.0);
  LBSQ_CHECK(spread >= 0.0);
  std::vector<Poi> pois;
  int64_t next_id = 0;
  for (int c = 0; c < num_clusters; ++c) {
    const geom::Point center{rng->Uniform(world.x1, world.x2),
                             rng->Uniform(world.y1, world.y2)};
    const int64_t children = rng->Poisson(mean_per_cluster);
    for (int64_t i = 0; i < children; ++i) {
      geom::Point p{center.x + rng->Normal(0.0, spread),
                    center.y + rng->Normal(0.0, spread)};
      p.x = std::clamp(p.x, world.x1, world.x2);
      p.y = std::clamp(p.y, world.y1, world.y2);
      pois.push_back(Poi{next_id++, p});
    }
  }
  return pois;
}

std::vector<Poi> GenerateMetroPois(Rng* rng, const geom::Rect& world,
                                   int64_t count, double clustered_fraction,
                                   int num_clusters, double cluster_spread) {
  LBSQ_CHECK(!world.empty());
  LBSQ_CHECK(count >= 0);
  LBSQ_CHECK(clustered_fraction >= 0.0 && clustered_fraction <= 1.0);
  LBSQ_CHECK(num_clusters >= 0);
  LBSQ_CHECK(cluster_spread >= 0.0);
  const int64_t clustered_target = static_cast<int64_t>(
      std::llround(static_cast<double>(count) * clustered_fraction));
  std::vector<Poi> pois;
  pois.reserve(static_cast<size_t>(count));
  if (clustered_target > 0 && num_clusters > 0) {
    // Trim the Poisson overshoot; any undershoot is made up by the uniform
    // background below, so the total is exact either way.
    const double mean_per_cluster =
        static_cast<double>(clustered_target) / num_clusters;
    std::vector<Poi> clustered = GenerateClusteredPois(
        rng, world, num_clusters, mean_per_cluster, cluster_spread);
    if (static_cast<int64_t>(clustered.size()) > clustered_target) {
      clustered.resize(static_cast<size_t>(clustered_target));
    }
    pois.insert(pois.end(), clustered.begin(), clustered.end());
  }
  while (static_cast<int64_t>(pois.size()) < count) {
    pois.push_back(Poi{0,
                       {rng->Uniform(world.x1, world.x2),
                        rng->Uniform(world.y1, world.y2)}});
  }
  for (size_t i = 0; i < pois.size(); ++i) {
    pois[i].id = static_cast<int64_t>(i);
  }
  return pois;
}

}  // namespace lbsq::spatial
