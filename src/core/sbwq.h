#ifndef LBSQ_CORE_SBWQ_H_
#define LBSQ_CORE_SBWQ_H_

#include <cstdint>
#include <vector>

#include "broadcast/client_protocol.h"
#include "broadcast/system.h"
#include "common/observability.h"
#include "core/verified_region.h"
#include "geom/rect.h"
#include "geom/rect_region.h"
#include "onair/onair_window.h"
#include "spatial/poi.h"

/// \file
/// The Sharing-Based Window Query — Algorithm 3 of the paper. The querying
/// host merges peer verified regions into the MVR; if the window lies
/// entirely inside the MVR the query is answered from shared data with zero
/// broadcast access. Otherwise the residual window(s) w' = w \ MVR shrink
/// the on-air search range.

namespace lbsq::fault {
class ChannelSession;
}  // namespace lbsq::fault

namespace lbsq::core {

/// SBWQ knobs.
struct SbwqOptions {
  /// Retrieval strategy for the on-air part.
  onair::WindowRetrieval retrieval = onair::WindowRetrieval::kSingleSpan;
  /// Enables window reduction (w'); when false the fallback retrieves the
  /// full window like the baseline.
  bool use_window_reduction = true;

  /// Aborts (LBSQ_CHECK) unless every field is in its legal range. Called at
  /// every public entry point that consumes these options.
  void Validate() const;
};

/// Outcome of one SBWQ execution.
struct SbwqOutcome {
  /// True when peers alone answered the query (w inside MVR).
  bool resolved_by_peers = false;
  /// Exactly the POIs inside the window, sorted by id.
  std::vector<spatial::Poi> pois;
  /// The merged verified region.
  geom::RectRegion mvr;
  /// Residual windows that had to be solved on air (empty when resolved by
  /// peers).
  std::vector<geom::Rect> residual_windows;
  /// Fraction of the window's area NOT covered by the MVR (0 when resolved
  /// by peers; 1 with no useful peer data).
  double residual_fraction = 1.0;
  /// Broadcast cost (all zero for peer-resolved queries).
  broadcast::AccessStats stats;
  /// Buckets downloaded on fallback.
  std::vector<int64_t> buckets;
  /// The verified knowledge this query produced (the full window: both
  /// resolution paths end with complete knowledge of w — unless the query
  /// degraded, in which case this is empty).
  VerifiedRegion cacheable;
  /// True when a faulty channel prevented complete retrieval: `pois` is
  /// best-effort (received buckets plus peer data only) and `cacheable` is
  /// empty — a degraded query never claims verified knowledge it lacks.
  bool degraded = false;
  /// Buckets given up on (retry budget or deadline exhausted).
  std::vector<int64_t> failed_buckets;
  /// Channel accounting for this query (zero without fault injection).
  int64_t fault_losses = 0;
  int64_t fault_corruptions = 0;
  bool fault_deadline_hit = false;
};

/// Executes SBWQ for `window` at slot `now` against the data shared by
/// `peers`, falling back to `system`'s broadcast channel for residual
/// windows.
///
/// A non-null `trace` receives an `sbwq.mvr` span with the residual-fraction
/// counter, the peer-resolution marker (`sbwq.peers_resolved`) or an
/// `sbwq.fallback` span covering the broadcast access, and the
/// protocol-stage spans of RetrieveBuckets.
///
/// A non-null `faults` with an enabled channel routes the fallback retrieval
/// through the faulty channel; buckets that could not be retrieved mark the
/// outcome `degraded` (see SbwqOutcome). A null or disabled session takes
/// the fault-free path, bit-identical to the five-argument overload.
SbwqOutcome RunSbwq(const geom::Rect& window, const SbwqOptions& options,
                    const std::vector<PeerData>& peers,
                    const broadcast::BroadcastSystem& system, int64_t now,
                    obs::TraceRecorder* trace = nullptr,
                    fault::ChannelSession* faults = nullptr);

}  // namespace lbsq::core

#endif  // LBSQ_CORE_SBWQ_H_
