#ifndef LBSQ_CORE_SBWQ_H_
#define LBSQ_CORE_SBWQ_H_

#include <cstdint>
#include <vector>

#include "broadcast/client_protocol.h"
#include "broadcast/system.h"
#include "common/observability.h"
#include "core/query_result.h"
#include "core/verified_region.h"
#include "geom/rect.h"
#include "geom/rect_region.h"
#include "onair/onair_window.h"
#include "spatial/poi.h"

/// \file
/// The Sharing-Based Window Query — Algorithm 3 of the paper. The querying
/// host merges peer verified regions into the MVR; if the window lies
/// entirely inside the MVR the query is answered from shared data with zero
/// broadcast access. Otherwise the residual window(s) w' = w \ MVR shrink
/// the on-air search range.
///
/// Execution goes through `core::QueryEngine` (`Execute` / `ExecuteBatch`);
/// the former free function `RunSbwq` is internal to the engine now.

namespace lbsq::core {

/// SBWQ knobs.
struct SbwqOptions {
  /// Retrieval strategy for the on-air part.
  onair::WindowRetrieval retrieval = onair::WindowRetrieval::kSingleSpan;
  /// Enables window reduction (w'); when false the fallback retrieves the
  /// full window like the baseline.
  bool use_window_reduction = true;

  /// Aborts (LBSQ_CHECK) unless every field is in its legal range. Called at
  /// every public entry point that consumes these options.
  void Validate() const;
};

/// Outcome of one SBWQ execution. The cost/degradation/cacheable fields
/// shared with SBNN live in the QueryResultCommon base; `cacheable` is the
/// full window here (both resolution paths end with complete knowledge of
/// w — unless the query degraded, in which case it is empty).
struct SbwqOutcome : QueryResultCommon {
  /// True when peers alone answered the query (w inside MVR).
  bool resolved_by_peers = false;
  /// Exactly the POIs inside the window, sorted by id.
  std::vector<spatial::Poi> pois;
  /// The merged verified region.
  geom::RectRegion mvr;
  /// Residual windows that had to be solved on air (empty when resolved by
  /// peers).
  std::vector<geom::Rect> residual_windows;
  /// Fraction of the window's area NOT covered by the MVR (0 when resolved
  /// by peers; 1 with no useful peer data).
  double residual_fraction = 1.0;

  /// Back to the freshly-constructed state, keeping all vector capacity
  /// (the batch execution path reuses outcomes).
  void Reset() {
    ResetCommon();
    resolved_by_peers = false;
    pois.clear();
    mvr.Clear();
    residual_windows.clear();
    residual_fraction = 1.0;
  }
};

}  // namespace lbsq::core

#endif  // LBSQ_CORE_SBWQ_H_
