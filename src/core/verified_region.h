#ifndef LBSQ_CORE_VERIFIED_REGION_H_
#define LBSQ_CORE_VERIFIED_REGION_H_

#include <cstdint>
#include <vector>

#include "geom/rect.h"
#include "spatial/poi.h"

/// \file
/// The data a peer shares when asked: its verified regions (MBRs within
/// which its cache is guaranteed complete with respect to the server
/// database) and its cached POIs.

namespace lbsq::core {

/// One verified region with its complete POI content.
///
/// Invariant (the soundness precondition of Lemma 3.1): every server POI
/// whose position lies inside `region` is present in `pois`. POIs outside
/// the region may also appear; they are genuine objects (they originate from
/// the server) but carry no completeness guarantee.
struct VerifiedRegion {
  geom::Rect region;
  std::vector<spatial::Poi> pois;
  /// The world epoch this knowledge was verified against (0 = the initial
  /// static world). Completeness holds with respect to the POI database of
  /// that epoch only; consumers on a different epoch must revalidate the
  /// region against the update log or reject it as stale (src/dynamic/).
  uint64_t epoch = 0;

  /// Back to the default (empty-region) state, keeping `pois` capacity so
  /// reused outcome storage does not reallocate.
  void Clear() {
    region = geom::Rect{};
    pois.clear();
    epoch = 0;
  }
};

/// Everything a peer returns to a querying host: all of its cache entries.
struct PeerData {
  std::vector<VerifiedRegion> regions;

  /// True when the peer shared nothing useful.
  bool empty() const { return regions.empty(); }
};

}  // namespace lbsq::core

#endif  // LBSQ_CORE_VERIFIED_REGION_H_
