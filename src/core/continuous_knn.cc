#include "core/continuous_knn.h"

#include "common/check.h"
#include "core/nnv.h"

namespace lbsq::core {

ContinuousKnn::ContinuousKnn(const SbnnOptions& options, double poi_density)
    : options_(options), poi_density_(poi_density) {
  LBSQ_CHECK(options.k >= 1);
  LBSQ_CHECK(poi_density >= 0.0);
}

ContinuousKnn::Update ContinuousKnn::Tick(
    geom::Point pos, PeerCache* cache, const std::vector<PeerData>& peers,
    const broadcast::BroadcastSystem& system, int64_t now) {
  LBSQ_CHECK(cache != nullptr);
  ++ticks_;
  Update update;

  // Step 1: can the host's own knowledge still verify the full answer?
  const PeerData own = cache->Share();
  if (!own.empty()) {
    const NnvResult self_check =
        NearestNeighborVerify(pos, options_.k, {own}, poi_density_);
    if (self_check.heap.fully_verified()) {
      ++own_cache_hits_;
      update.from_own_cache = true;
      for (const HeapEntry& e : self_check.heap.entries()) {
        update.neighbors.push_back(spatial::PoiDistance{e.poi, e.distance});
      }
      return update;
    }
  }

  // Step 2: full SBNN over own cache + radio peers, refreshing the cache.
  std::vector<PeerData> all = peers;
  if (!own.empty()) all.push_back(own);
  SbnnOutcome outcome =
      RunSbnn(pos, options_, all, poi_density_, system, now);
  update.neighbors = std::move(outcome.neighbors);
  update.resolved_by = outcome.resolved_by;
  update.stats = outcome.stats;
  cache->Insert(outcome.cacheable, pos, pos, geom::Point{0.0, 0.0});
  return update;
}

}  // namespace lbsq::core
