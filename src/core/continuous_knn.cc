#include "core/continuous_knn.h"

#include "common/check.h"
#include "core/nnv.h"

namespace lbsq::core {

ContinuousKnn::ContinuousKnn(const QueryEngine& engine)
    : engine_(engine), self_check_(engine.options().sbnn.k) {
  request_.kind = QueryKind::kKnn;
}

ContinuousKnn::Update ContinuousKnn::Tick(geom::Point pos, PeerCache* cache,
                                          const std::vector<PeerData>& peers,
                                          int64_t now) {
  LBSQ_CHECK(cache != nullptr);
  ++ticks_;
  Update update;

  // Step 1: can the host's own knowledge still verify the full answer?
  const int k = engine_.options().sbnn.k;
  own_.clear();
  own_.push_back(cache->Share());
  if (!own_.front().empty()) {
    NearestNeighborVerify(pos, k, own_, engine_.poi_density(), &nnv_pool_,
                          &self_check_, &workspace_.region_scratch);
    if (self_check_.heap.fully_verified()) {
      ++own_cache_hits_;
      update.from_own_cache = true;
      for (const HeapEntry& e : self_check_.heap.entries()) {
        update.neighbors.push_back(spatial::PoiDistance{e.poi, e.distance});
      }
      return update;
    }
  }

  // Step 2: full SBNN over own cache + radio peers, refreshing the cache.
  // The own snapshot goes last, preserving the MVR merge order of the
  // original free-function pipeline. peer_buffer_ backs the request's span
  // and outlives the Execute call.
  peer_buffer_.clear();
  peer_buffer_.insert(peer_buffer_.end(), peers.begin(), peers.end());
  if (!own_.front().empty()) peer_buffer_.push_back(std::move(own_.front()));
  request_.peers = peer_buffer_;
  request_.position = pos;
  request_.slot = now;
  engine_.Execute(request_, workspace_, &outcome_);
  SbnnOutcome& outcome = *outcome_.knn;
  update.neighbors = std::move(outcome.neighbors);
  update.resolved_by = outcome.resolved_by;
  update.stats = outcome.stats;
  cache->Insert(outcome.cacheable, pos, pos, geom::Point{0.0, 0.0});
  return update;
}

}  // namespace lbsq::core
