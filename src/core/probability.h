#ifndef LBSQ_CORE_PROBABILITY_H_
#define LBSQ_CORE_PROBABILITY_H_

/// \file
/// The probabilistic machinery of §3.3.2: under a Poisson POI distribution,
/// the correctness probability of an unverified nearest neighbor is
/// e^(-lambda * u) where u is the area of its unverified region (Lemma 3.2),
/// and the surpassing ratio bounds the extra travel distance a user accepts
/// when acting on an unverified answer.

namespace lbsq::core {

/// Lemma 3.2: probability that no POI exists in an unverified region of
/// `area` square units when POIs are Poisson with density `lambda` per
/// square unit. Requires lambda >= 0 and area >= 0.
double CorrectnessProbability(double lambda, double area);

/// Surpassing ratio r'/r of an unverified POI at distance
/// `unverified_distance` relative to the last verified POI at distance
/// `last_verified_distance`. The worst-case extra travel distance for
/// a user who takes the unverified POI as their i-th NN is approximately
/// last_verified_distance * (ratio - 1) (the paper's Table 2 example).
/// Edge cases: with no verified frontier (last_verified_distance == 0) the
/// ratio is +inf — unless the unverified POI is also at distance 0, where
/// the extra travel is zero and the ratio is 1.
double SurpassingRatio(double unverified_distance,
                       double last_verified_distance);

/// CDF of the distance to the k-th nearest POI from an arbitrary point under
/// a Poisson process of density `lambda`:
/// P(d_k <= r) = 1 - sum_{i<k} e^(-lambda pi r^2) (lambda pi r^2)^i / i!.
/// Used by the analytic hit-ratio model.
double KthNeighborDistanceCdf(double lambda, int k, double r);

/// Mean of the k-th nearest-neighbor distance under the same model,
/// E[d_k] = Gamma(k + 1/2) / (k-1)! / sqrt(lambda pi).
double KthNeighborDistanceMean(double lambda, int k);

}  // namespace lbsq::core

#endif  // LBSQ_CORE_PROBABILITY_H_
