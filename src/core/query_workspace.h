#ifndef LBSQ_CORE_QUERY_WORKSPACE_H_
#define LBSQ_CORE_QUERY_WORKSPACE_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "broadcast/system.h"
#include "core/query_engine.h"
#include "core/verified_region.h"
#include "geom/rect.h"
#include "geom/rect_region.h"
#include "hilbert/hilbert.h"
#include "kernels/poi_slab.h"
#include "spatial/poi.h"

/// \file
/// Per-thread scratch state for query execution. A `QueryWorkspace` owns
/// every transient buffer SBNN/SBWQ/NNV need (candidate pools, bucket id
/// sets, cover ranges, the merged-POI sort arena) plus a broadcast-cycle-
/// scoped memo of `HilbertGrid::CoverRect` covers and the `AirIndex` bucket
/// lookups derived from them, so steady-state execution through
/// `QueryEngine::Execute(request, workspace, outcome)` / `ExecuteBatch`
/// performs zero heap allocations and co-located queries within one cycle
/// share their index work (the BRkNN-style batching win: Manhattan-mobility
/// hosts clustered on the same street issue near-identical queries).
///
/// A workspace is NOT thread-safe: give each worker thread its own. Results
/// are bitwise identical to workspace-free execution — every memoized value
/// is a pure function of the immutable broadcast system, so reuse changes
/// cost, never content.

namespace lbsq::core {

/// Memo key for one `CoverRect` computation: the grid-cell coordinates of
/// the two corners of the world-clamped query rectangle (the cover is a
/// pure function of those two cells), with a separate slot for rectangles
/// that miss the world entirely.
struct CoverKey {
  uint32_t x1 = 0;
  uint32_t y1 = 0;
  uint32_t x2 = 0;
  uint32_t y2 = 0;
  bool outside_world = false;

  friend bool operator==(const CoverKey& a, const CoverKey& b) {
    return a.x1 == b.x1 && a.y1 == b.y1 && a.x2 == b.x2 && a.y2 == b.y2 &&
           a.outside_world == b.outside_world;
  }
};

struct CoverKeyHash {
  size_t operator()(const CoverKey& k) const {
    // splitmix64 finalizer over the packed cell coordinates.
    uint64_t h = (static_cast<uint64_t>(k.x1) << 48) ^
                 (static_cast<uint64_t>(k.y1) << 32) ^
                 (static_cast<uint64_t>(k.x2) << 16) ^
                 static_cast<uint64_t>(k.y2) ^
                 (k.outside_world ? 0x9e3779b97f4a7c15ULL : 0);
    h ^= h >> 30;
    h *= 0xbf58476d1ce4e5b9ULL;
    h ^= h >> 27;
    h *= 0x94d049bb133111ebULL;
    h ^= h >> 31;
    return static_cast<size_t>(h);
  }
};

/// Everything memoized for one cover key, filled lazily: the cover ranges
/// eagerly, the bucket lookups and the collected bucket content on first
/// use. All values are pure functions of the immutable broadcast system.
struct CoverEntry {
  std::vector<hilbert::IndexRange> ranges;
  /// BucketsForSpan(ranges.front().lo, ranges.back().hi) (single-span
  /// retrieval, the SBNN fallback and the default SBWQ strategy).
  std::vector<int64_t> span_buckets;
  /// BucketsForRanges(ranges) (partitioned-ranges retrieval).
  std::vector<int64_t> range_buckets;
  /// CollectPois(span_buckets) / CollectPois(range_buckets).
  std::vector<spatial::Poi> span_pois;
  std::vector<spatial::Poi> range_pois;
  /// SoA transposes of span_pois / range_pois, built alongside them: the
  /// SBWQ residual-window filter streams the memoized bucket content through
  /// the SIMD window-mask kernel without a per-query transpose.
  kernels::PoiSlab span_slab;
  kernels::PoiSlab range_slab;
  /// IndexReadBuckets(ranges) under a hierarchical air index (-1 = not yet
  /// computed).
  int64_t tree_read_buckets = -1;
  bool have_span = false;
  bool have_ranges = false;
  bool have_span_pois = false;
  bool have_range_pois = false;
};

/// Reusable scratch + memo for one execution thread (see file comment).
class QueryWorkspace {
 public:
  QueryWorkspace() = default;
  QueryWorkspace(const QueryWorkspace&) = delete;
  QueryWorkspace& operator=(const QueryWorkspace&) = delete;
  // Movable so owners (e.g. a simulator's per-worker state) can live in
  // containers; moving between Execute calls is safe, sharing is not.
  QueryWorkspace(QueryWorkspace&&) = default;
  QueryWorkspace& operator=(QueryWorkspace&&) = default;

  /// Binds the memo to (`system`, its world epoch, broadcast `cycle`): a
  /// change of any clears it (covers never go stale — each epoch's system is
  /// immutable — so the cycle scope only bounds memo memory to one cycle's
  /// query locality). The epoch guard makes the binding safe under the
  /// dynamic world: a new epoch's system allocated at a recycled address
  /// (the ABA hazard of the pointer tag) still invalidates the memo.
  /// Called by the engine at the top of every Execute.
  void Prepare(const broadcast::BroadcastSystem& system, int64_t cycle);

  /// The world epoch the memo is currently bound to.
  uint64_t pinned_epoch() const { return system_epoch_; }

  /// The memoized cover of `rect` (computed on first sight of its cell
  /// key). The returned reference stays valid until the next Prepare that
  /// clears the memo (node-based map: inserts never move entries).
  CoverEntry& Cover(const broadcast::BroadcastSystem& system,
                    const geom::Rect& rect);

  /// Memoized single-span bucket lookup for a non-empty cover.
  const std::vector<int64_t>& SpanBuckets(
      const broadcast::BroadcastSystem& system, CoverEntry* entry);

  /// Memoized partitioned-ranges bucket lookup for a non-empty cover.
  const std::vector<int64_t>& RangeBuckets(
      const broadcast::BroadcastSystem& system, CoverEntry* entry);

  /// Memoized bucket content (sorted by id, deduplicated — exactly what
  /// `BroadcastSystem::CollectPois` returns) of the span / ranges lookup.
  const std::vector<spatial::Poi>& SpanPois(
      const broadcast::BroadcastSystem& system, CoverEntry* entry);
  const std::vector<spatial::Poi>& RangePois(
      const broadcast::BroadcastSystem& system, CoverEntry* entry);

  /// Memoized `IndexReadBuckets(ranges)` (hierarchical-index read cost).
  int64_t TreeReadBuckets(const broadcast::BroadcastSystem& system,
                          CoverEntry* entry);

  /// Distinct covers currently memoized (observability / tests).
  size_t memo_size() const { return memo_.size(); }
  /// The cycle the memo is scoped to.
  int64_t memo_cycle() const { return cycle_; }

  /// Outcome storage for ExecuteBatch: grows to the largest batch seen and
  /// never shrinks, so repeated batches reuse every inner buffer.
  std::vector<QueryOutcome>& outcome_arena() { return outcomes_; }

  // --- Scratch buffers (owned here so the per-query hot path never
  // allocates once capacities are warm; each use clears before filling).
  /// NNV candidate-merge pool.
  std::vector<spatial::Poi> nnv_pool;
  /// SBNN known-POI assembly arena (downloaded buckets + peer candidates).
  std::vector<spatial::Poi> known_pois;
  /// Bucket ids the fallback retrieval needs.
  std::vector<int64_t> needed;
  /// Buckets surviving the §3.3.3 lower-bound filter.
  std::vector<int64_t> kept;
  /// Buckets actually received on the faulty-channel path.
  std::vector<int64_t> retrieved;
  /// Curve-interval lookups for multi-residual tree-index reads.
  std::vector<hilbert::IndexRange> lookups;
  /// Peer snapshot surviving the defensive screen.
  std::vector<PeerData> screened;
  /// Transient buffers for the MVR geometry kernels (merge, subtract,
  /// boundary distance).
  geom::RectRegionScratch region_scratch;
  /// Distance selection buffer for AirIndex::KthDistanceUpperBound.
  std::vector<double> index_distances;
  /// SoA slab + distance/index buffers for the SIMD hot-loop kernels
  /// (BruteForceKnn, NNV candidate distances, window selections).
  kernels::SlabScratch slab;
  /// Merge state for `BroadcastSystem::CollectPois` (cursor heap +
  /// canonicalized bucket list) — per-workspace like every other scratch so
  /// its capacity is visible to the alloc counter instead of hiding in TLS.
  broadcast::CollectScratch collect_scratch;

 private:
  std::unordered_map<CoverKey, CoverEntry, CoverKeyHash> memo_;
  const void* system_tag_ = nullptr;
  size_t system_pois_ = 0;
  uint64_t system_epoch_ = 0;
  int64_t cycle_ = -1;
  std::vector<QueryOutcome> outcomes_;
};

}  // namespace lbsq::core

#endif  // LBSQ_CORE_QUERY_WORKSPACE_H_
