#ifndef LBSQ_CORE_QUERY_INTERNAL_H_
#define LBSQ_CORE_QUERY_INTERNAL_H_

#include <cstdint>
#include <span>
#include <vector>

#include "broadcast/system.h"
#include "common/observability.h"
#include "core/query_workspace.h"
#include "core/sbnn.h"
#include "core/sbwq.h"
#include "core/verified_region.h"
#include "geom/point.h"
#include "geom/rect.h"

/// \file
/// Implementation seam between QueryEngine and the query algorithms. The
/// former public free functions RunSbnn / RunSbwq live here now, in the
/// `internal` namespace, workspace-threaded and writing into caller-owned
/// outcomes: every external consumer goes through `QueryEngine::Execute` /
/// `ExecuteBatch` instead. Not part of the library API — only the engine
/// (and its white-box tests) may include this header.

namespace lbsq::fault {
class ChannelSession;
}  // namespace lbsq::fault

namespace lbsq::core::internal {

/// Algorithm 2 (SBNN). Resets `*outcome` for `options.k` and fills it;
/// scratch and the cycle memo come from `workspace` (which must have been
/// Prepare()d for `system`). Bit-identical to the pre-workspace free
/// function for any workspace state.
void RunSbnn(geom::Point q, const SbnnOptions& options,
             std::span<const PeerData> peers, double poi_density,
             const broadcast::BroadcastSystem& system, int64_t now,
             obs::TraceRecorder* trace, fault::ChannelSession* faults,
             QueryWorkspace& workspace, SbnnOutcome* outcome);

/// Algorithm 3 (SBWQ); same contract as RunSbnn above.
void RunSbwq(const geom::Rect& window, const SbwqOptions& options,
             std::span<const PeerData> peers,
             const broadcast::BroadcastSystem& system, int64_t now,
             obs::TraceRecorder* trace, fault::ChannelSession* faults,
             QueryWorkspace& workspace, SbwqOutcome* outcome);

}  // namespace lbsq::core::internal

#endif  // LBSQ_CORE_QUERY_INTERNAL_H_
