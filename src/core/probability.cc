#include "core/probability.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace lbsq::core {

double CorrectnessProbability(double lambda, double area) {
  LBSQ_CHECK(lambda >= 0.0);
  LBSQ_CHECK(area >= -1e-9);  // tolerate tiny negative numerical noise
  return std::exp(-lambda * std::max(area, 0.0));
}

double SurpassingRatio(double unverified_distance,
                       double last_verified_distance) {
  LBSQ_CHECK(unverified_distance >= 0.0);
  if (last_verified_distance <= 0.0) {
    // 0/0: the unverified candidate sits exactly at the verified frontier
    // (both on the query point) — no extra travel, ratio 1, not infinity.
    return unverified_distance <= 0.0
               ? 1.0
               : std::numeric_limits<double>::infinity();
  }
  return unverified_distance / last_verified_distance;
}

double KthNeighborDistanceCdf(double lambda, int k, double r) {
  LBSQ_CHECK(lambda >= 0.0);
  LBSQ_CHECK(k >= 1);
  if (r <= 0.0) return 0.0;
  const double mu = lambda * M_PI * r * r;
  double term = std::exp(-mu);  // i = 0
  double tail = term;
  for (int i = 1; i < k; ++i) {
    term *= mu / static_cast<double>(i);
    tail += term;
  }
  return 1.0 - tail;
}

double KthNeighborDistanceMean(double lambda, int k) {
  LBSQ_CHECK(lambda > 0.0);
  LBSQ_CHECK(k >= 1);
  // E[d_k] = Gamma(k + 1/2) / Gamma(k) / sqrt(lambda * pi).
  const double log_ratio = std::lgamma(static_cast<double>(k) + 0.5) -
                           std::lgamma(static_cast<double>(k));
  return std::exp(log_ratio) / std::sqrt(lambda * M_PI);
}

}  // namespace lbsq::core
