#ifndef LBSQ_CORE_SHARDED_QUERY_ENGINE_H_
#define LBSQ_CORE_SHARDED_QUERY_ENGINE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "broadcast/system.h"
#include "core/query_engine.h"
#include "core/query_workspace.h"
#include "geom/rect.h"
#include "hilbert/partition.h"
#include "spatial/poi.h"

/// \file
/// Metro-scale query execution over Hilbert-range shards. One broadcast
/// channel cannot carry a metropolitan POI database — the cycle grows with
/// the data and every query's access latency grows with it. Sharding cuts
/// the Hilbert curve into N contiguous ranges (`hilbert::ShardMap`) and
/// runs one complete, independent `broadcast::BroadcastSystem` per range:
/// N parallel channels, each with the short cycle of its own slice.
///
/// `ShardedQueryEngine` is the multi-shard counterpart of `QueryEngine`
/// and speaks the same `QueryRequest` / `QueryOutcome` vocabulary:
///
///  - kNN: the request runs in full (peers included) on the *home* shard —
///    the shard owning the query point's curve cell. A peer-resolved
///    outcome is final: the peer stage is a pure function of (q, k, peers,
///    global POI density), so it never depends on the shard count. On
///    broadcast fallback, the home answer's k-th distance bounds the
///    global k-th distance, and only shards whose POI bounding box lies
///    within that bound are queried (peerlessly); the partial answers
///    k-way merge by (distance, id) with the kernel tie rules.
///  - Window: the touched shards come from the window's Hilbert cover
///    through the ShardMap; each runs the request (peers included — the
///    MVR reduction applies per shard) and the partial POI sets union,
///    deduplicated by id at the shard seams.
///
/// Guarantees:
///  - 1 shard: pure delegation — byte-identical to an unsharded
///    `QueryEngine` over the same POIs (the partitioner preserves input
///    order, so even the broadcast schedule is identical).
///  - N shards: execution is deterministic, and the *answer plane*
///    (neighbor ids + distances, window POI sets) is bit-identical to the
///    1-shard answer for exact resolutions at any shard count.
///  - Zero heap allocations per query at steady state: all scratch lives
///    in the caller's `ShardedQueryWorkspace` (bench_shard_scale gates
///    this).
///
/// Merged-outcome conventions at N > 1 (documented deviations from the
/// single-channel outcome):
///  - `stats.access_latency` is the max over the queried shards (the
///    channels broadcast concurrently; the client tunes them in parallel),
///    `tuning_time` and `buckets_read` are sums (receiver-on time and
///    download volume are additive costs).
///  - `buckets` / `failed_buckets` are left empty — per-channel bucket ids
///    are meaningless without a channel id.
///  - The kNN `cacheable` is rebuilt as a pure function of the merged
///    answer (the axis-aligned square inscribed in the k-th neighbor's
///    disc), so cache evolution cannot observe the shard layout; with
///    fewer than k POIs in the whole world it stays empty.
///  - The cacheable's epoch stamp is the *minimum* epoch over the shards
///    that contributed to the answer: under `dynamic::ShardedWorld` partial
///    rebuilds, clean shards share prior-epoch systems, and knowledge
///    merged across divergent channels is only as fresh as the oldest one.
///  - `request.trace` is attached to the home (first) shard's execution
///    only; secondary partials run untraced.
///  - Fault injection is a single-channel concept: construction aborts
///    when `options.fault` is enabled with more than one shard.

namespace lbsq::core {

/// Per-thread scratch for ShardedQueryEngine: one QueryWorkspace per shard
/// (each shard's covers memoize independently) plus the merge buffers. All
/// storage is grow-only.
class ShardedQueryWorkspace {
 public:
  ShardedQueryWorkspace() = default;
  ShardedQueryWorkspace(const ShardedQueryWorkspace&) = delete;
  ShardedQueryWorkspace& operator=(const ShardedQueryWorkspace&) = delete;
  ShardedQueryWorkspace(ShardedQueryWorkspace&&) = default;
  ShardedQueryWorkspace& operator=(ShardedQueryWorkspace&&) = default;

 private:
  friend class ShardedQueryEngine;

  /// The per-shard workspace, created on first use.
  QueryWorkspace& Shard(size_t shard);

  std::vector<std::unique_ptr<QueryWorkspace>> shards_;
  /// Window-routing scratch: the window's Hilbert cover and touched shards.
  std::vector<uint64_t> cover_scratch_;
  std::vector<hilbert::IndexRange> cover_;
  std::vector<int> touched_;
  /// Partial outcome of each secondary shard (recycled between shards).
  /// One per query kind: the engine resets the *other* kind's outcome
  /// optional on every Execute, so a single shared partial would destroy
  /// and reallocate its buffers on every kNN/window flip in a mixed batch.
  QueryOutcome partial_knn_;
  QueryOutcome partial_window_;
  /// Merge buffers.
  std::vector<spatial::PoiDistance> merged_neighbors_;
  std::vector<spatial::Poi> merged_pois_;
  /// ExecuteBatch outcome storage (grow-only, like QueryWorkspace's arena).
  std::vector<QueryOutcome> arena_;
};

/// The multi-shard query engine: owns the shard map, the per-shard
/// broadcast systems, and the per-shard `QueryEngine`s. Immutable after
/// construction; `Execute` is safe to call concurrently, each thread with
/// its own `ShardedQueryWorkspace`.
class ShardedQueryEngine {
 public:
  /// Partitions `pois` into `num_shards` contiguous Hilbert ranges
  /// (occupancy-balanced; see hilbert::PartitionByOccupancy) and builds one
  /// broadcast system per non-empty shard, every one over the full `world`
  /// rect with the same `params` — so all shards linearize space with one
  /// curve and the 1-shard build is byte-identical to an unsharded system.
  /// The Lemma 3.2 density pinned into every shard engine is the *global*
  /// density (all POIs over the world) unless `options` overrides it.
  ShardedQueryEngine(std::vector<spatial::Poi> pois, const geom::Rect& world,
                     const broadcast::BroadcastParams& params,
                     const EngineOptions& options, int num_shards);

  /// Assembles an engine from prebuilt parts: a shard map and one broadcast
  /// system per shard (null = empty shard), each built over the full
  /// `world` with `params`'s curve order. This is the dynamic world's
  /// epoch-publication path — a new epoch shares the unchanged shards'
  /// systems with its predecessor and carries fresh ones only for the
  /// shards an update batch touched. Bounds, counts, and the pinned global
  /// density are derived from the systems' POI sets.
  ShardedQueryEngine(
      const geom::Rect& world, const broadcast::BroadcastParams& params,
      const EngineOptions& options, hilbert::ShardMap map,
      std::vector<std::shared_ptr<const broadcast::BroadcastSystem>> systems);

  /// Executes one query against the sharded deployment. Allocation-free at
  /// steady state; `*outcome` is reset and refilled in place.
  void Execute(const QueryRequest& request, ShardedQueryWorkspace& workspace,
               QueryOutcome* outcome) const;

  /// Convenience form with a throwaway workspace.
  QueryOutcome Execute(const QueryRequest& request) const;

  /// Executes `requests` in order; outcome i corresponds to request i and
  /// is bit-identical to `Execute(requests[i])`. The returned span points
  /// into the workspace's arena and stays valid until the next
  /// ExecuteBatch on the same workspace.
  std::span<const QueryOutcome> ExecuteBatch(
      std::span<const QueryRequest> requests,
      ShardedQueryWorkspace& workspace) const;

  int num_shards() const { return map_.num_shards(); }
  const hilbert::ShardMap& map() const { return map_; }
  const geom::Rect& world() const { return world_; }
  const EngineOptions& options() const { return shard_options_; }
  /// The routing grid (same curve order and linearization as the shards').
  const hilbert::HilbertGrid& routing_grid() const { return routing_grid_; }

  /// Shard `s`'s broadcast system / engine — null when the shard owns no
  /// POIs (legal for small workloads at large N).
  const broadcast::BroadcastSystem* shard_system(int s) const {
    return systems_[static_cast<size_t>(s)].get();
  }
  /// Owning handle to shard `s`'s system, for epoch publication (the next
  /// epoch shares the systems of shards its update batch left untouched).
  std::shared_ptr<const broadcast::BroadcastSystem> shard_system_ptr(
      int s) const {
    return systems_[static_cast<size_t>(s)];
  }
  const QueryEngine* shard_engine(int s) const {
    return engines_[static_cast<size_t>(s)].get();
  }
  /// Bounding box of shard `s`'s POIs (empty rect for an empty shard).
  const geom::Rect& shard_bounds(int s) const {
    return bounds_[static_cast<size_t>(s)];
  }
  /// Number of POIs shard `s` owns.
  size_t shard_poi_count(int s) const {
    return poi_counts_[static_cast<size_t>(s)];
  }
  /// Total POIs across all shards.
  size_t total_pois() const { return total_pois_; }

 private:
  /// Derives everything downstream of `systems_` + `map_`: bounds, counts,
  /// the pinned global density, the per-shard engines. Shared tail of both
  /// constructors.
  void Init();

  /// The home shard for a kNN at `q`: the owner of q's curve cell, or the
  /// first non-empty shard when that one owns no POIs.
  int HomeShard(geom::Point q) const;

  void ExecuteKnn(const QueryRequest& request,
                  ShardedQueryWorkspace& workspace,
                  QueryOutcome* outcome) const;
  void ExecuteWindow(const QueryRequest& request,
                     ShardedQueryWorkspace& workspace,
                     QueryOutcome* outcome) const;

  geom::Rect world_;
  hilbert::HilbertGrid routing_grid_;
  hilbert::ShardMap map_;
  EngineOptions shard_options_;
  size_t total_pois_ = 0;
  std::vector<std::shared_ptr<const broadcast::BroadcastSystem>> systems_;
  std::vector<std::unique_ptr<QueryEngine>> engines_;
  std::vector<geom::Rect> bounds_;
  std::vector<size_t> poi_counts_;
  int first_nonempty_ = -1;
};

}  // namespace lbsq::core

#endif  // LBSQ_CORE_SHARDED_QUERY_ENGINE_H_
