#ifndef LBSQ_CORE_PEER_CACHE_H_
#define LBSQ_CORE_PEER_CACHE_H_

#include <cstdint>
#include <vector>

#include "core/verified_region.h"
#include "geom/point.h"
#include "geom/rect.h"
#include "spatial/poi.h"

/// \file
/// The local query-result cache of a mobile host. Per the paper's policies
/// (§4.1): a host stores verified POIs together with their MBRs, bounded by
/// a per-data-type POI capacity (CSize), and replaces entries based on its
/// current moving direction and the distance to the cached data (the
/// semantic caching policy of Ren & Dunham).
///
/// The load-bearing invariant maintained throughout: for every cache entry,
/// every server POI inside `region` is present in `pois`. Lemma 3.1 (and
/// with it the correctness of every sharing-based answer in the system) is
/// unsound without it, so insertion *shrinks* regions that would exceed the
/// capacity rather than silently dropping POIs.

namespace lbsq::core {

/// How an entry that exceeds the POI capacity is reduced.
enum class CachePolicy {
  /// Shrink the region until its complete content fits (sound; default).
  kSoundShrink,
  /// The policy the paper's §4.1 text describes literally: store the
  /// `capacity` nearest POIs "and their collective MBR". When the capacity
  /// binds, that MBR contains server POIs that were NOT stored, silently
  /// breaking the completeness invariant Lemma 3.1 depends on — peers
  /// consuming such regions can return wrong answers. Provided so the
  /// ablation bench can quantify the hit-ratio inflation and the answer
  /// error rate this policy trades it for.
  kCollectiveMbr,
};

/// Query-result cache of one mobile host.
class PeerCache {
 public:
  /// Cache holding at most `poi_capacity` POIs (the paper's CSize) across at
  /// most `max_regions` verified regions.
  explicit PeerCache(int poi_capacity, int max_regions = 8,
                     CachePolicy policy = CachePolicy::kSoundShrink);

  /// Current verified regions.
  const std::vector<VerifiedRegion>& entries() const { return entries_; }

  /// Total cached POIs across all entries.
  int64_t TotalPois() const;

  /// What this host returns when a peer asks for its cached spatial data.
  PeerData Share() const;

  /// Empties the cache.
  void Clear() { entries_.clear(); }

  /// Inserts a verified region. `vr` must satisfy the completeness invariant
  /// on entry (POIs outside the region are permitted and are dropped).
  ///
  /// `anchor` is the point the knowledge is centered on (the query
  /// location): when the entry alone exceeds the POI capacity its region is
  /// shrunk around the anchor until it fits. `host_pos` and `heading`
  /// parameterize the replacement policy used to evict older entries when
  /// the cache overflows: the entry with the worst direction-weighted
  /// distance (far away and behind the direction of motion) goes first.
  void Insert(VerifiedRegion vr, geom::Point anchor, geom::Point host_pos,
              geom::Point heading);

  /// Reduces `vr` to the `capacity` POIs nearest to `anchor` and claims
  /// their collective MBR (intersected with the original region) as the
  /// verified region — the kCollectiveMbr policy. Unsound when POIs were
  /// dropped; see CachePolicy.
  static VerifiedRegion ReduceToCollectiveMbr(VerifiedRegion vr,
                                              geom::Point anchor,
                                              int capacity);

  /// Shrinks `vr` around `anchor` until it holds at most `capacity` POIs,
  /// preserving the completeness invariant: POIs are ranked by distance to
  /// the anchor, a cut radius is placed between the capacity-th and the
  /// (capacity+1)-th, and the region is intersected with the axis-aligned
  /// square inscribed in that cut disc. Returns an empty-region entry when
  /// nothing can be kept. Exposed for tests.
  static VerifiedRegion ShrinkToCapacity(VerifiedRegion vr, geom::Point anchor,
                                         int capacity);

 private:
  /// Evicts worst-scored entries (except `protect_index`) until both the POI
  /// capacity and the region-count limit hold.
  void EnforceCapacity(geom::Point host_pos, geom::Point heading,
                       size_t protect_index);

  int poi_capacity_;
  int max_regions_;
  CachePolicy policy_;
  std::vector<VerifiedRegion> entries_;
};

}  // namespace lbsq::core

#endif  // LBSQ_CORE_PEER_CACHE_H_
