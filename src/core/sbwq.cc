#include "core/sbwq.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "core/query_internal.h"
#include "fault/faulty_channel.h"
#include "kernels/kernels.h"

namespace lbsq::core {

void SbwqOptions::Validate() const {
  LBSQ_CHECK(retrieval == onair::WindowRetrieval::kSingleSpan ||
             retrieval == onair::WindowRetrieval::kPartitionedRanges);
}

namespace internal {

void RunSbwq(const geom::Rect& window, const SbwqOptions& options,
             std::span<const PeerData> peers,
             const broadcast::BroadcastSystem& system, int64_t now,
             obs::TraceRecorder* trace, fault::ChannelSession* faults,
             QueryWorkspace& ws, SbwqOutcome* out) {
  options.Validate();
  LBSQ_CHECK(!window.empty());
  SbwqOutcome& outcome = *out;
  outcome.Reset();

  // Merge peer verified regions and pool the shared POIs that overlap w
  // (the pool is assembled directly in the outcome's poi storage; the
  // containment scan runs through the SIMD window-mask kernel).
  std::vector<spatial::Poi>& pool = outcome.pois;
  for (const PeerData& peer : peers) {
    for (const VerifiedRegion& vr : peer.regions) {
      outcome.mvr.Add(vr.region, &ws.region_scratch);
      const size_t n = vr.pois.size();
      ws.slab.slab.Assign(vr.pois.data(), n);
      uint32_t* idx = ws.slab.IdxFor(n);
      const size_t m =
          kernels::SelectInWindow(ws.slab.slab.xs(), ws.slab.slab.ys(), n,
                                  window.x1, window.y1, window.x2, window.y2,
                                  idx);
      for (size_t j = 0; j < m; ++j) pool.push_back(vr.pois[idx[j]]);
    }
  }
  // Everything pooled from here on comes from CollectPois or the cycle memo
  // — already sorted by id and deduplicated, with selections preserving that
  // order — so the canonicalizing sort below is only needed when the peers
  // contributed.
  const size_t peer_pool_size = pool.size();

  // Residual windows w' = w \ MVR.
  outcome.mvr.SubtractFrom(window, &outcome.residual_windows,
                           &ws.region_scratch);
  double residual_area = 0.0;
  for (const geom::Rect& r : outcome.residual_windows) {
    residual_area += r.area();
  }
  outcome.residual_fraction =
      window.area() > 0.0 ? residual_area / window.area() : 0.0;
  if (trace != nullptr) {
    // MVR merge and subtraction are pure computation (instantaneous in
    // broadcast time); the counter carries the coverage outcome.
    trace->Span("sbwq.mvr", now, now);
    trace->Counter("sbwq.residual_fraction", outcome.residual_fraction);
  }

  if (outcome.residual_windows.empty()) {
    // w lies inside the MVR: the pooled data is complete for w.
    outcome.resolved_by_peers = true;
    if (trace != nullptr) trace->Counter("sbwq.peers_resolved", 1.0);
  } else {
    // Solve the residual window(s) on air. Without window reduction the
    // baseline retrieves the whole original window. Covers and the bucket
    // lookups derived from them come from the cycle memo.
    const bool single_span =
        options.retrieval == onair::WindowRetrieval::kSingleSpan;
    ws.needed.clear();
    // Set when exactly one cover fed `needed`: its lookup is already sorted
    // and unique, so the memoized bucket content applies verbatim.
    CoverEntry* sole_cover = nullptr;
    if (options.use_window_reduction) {
      for (const geom::Rect& residual : outcome.residual_windows) {
        CoverEntry& cover = ws.Cover(system, residual);
        if (outcome.residual_windows.size() == 1) sole_cover = &cover;
        if (cover.ranges.empty()) continue;
        const std::vector<int64_t>& part = single_span
                                               ? ws.SpanBuckets(system, &cover)
                                               : ws.RangeBuckets(system, &cover);
        ws.needed.insert(ws.needed.end(), part.begin(), part.end());
      }
    } else {
      CoverEntry& cover = ws.Cover(system, window);
      sole_cover = &cover;
      if (!cover.ranges.empty()) {
        const std::vector<int64_t>& part = single_span
                                               ? ws.SpanBuckets(system, &cover)
                                               : ws.RangeBuckets(system, &cover);
        ws.needed.insert(ws.needed.end(), part.begin(), part.end());
      }
    }
    std::sort(ws.needed.begin(), ws.needed.end());
    ws.needed.erase(std::unique(ws.needed.begin(), ws.needed.end()),
                    ws.needed.end());
    outcome.buckets.assign(ws.needed.begin(), ws.needed.end());
    broadcast::IndexReadMode index_mode =
        broadcast::IndexReadMode::FlatDirectory();
    if (system.tree_index() != nullptr) {
      if (sole_cover != nullptr) {
        index_mode = broadcast::IndexReadMode::TreePaths(
            ws.TreeReadBuckets(system, sole_cover));
      } else {
        ws.lookups.clear();
        for (const geom::Rect& residual : outcome.residual_windows) {
          const std::vector<hilbert::IndexRange>& part =
              ws.Cover(system, residual).ranges;
          ws.lookups.insert(ws.lookups.end(), part.begin(), part.end());
        }
        index_mode = broadcast::IndexReadMode::TreePaths(
            system.IndexReadBuckets(ws.lookups));
      }
    }
    const std::vector<int64_t>* retrieved = &ws.needed;
    bool complete_cover = false;
    if (faults != nullptr && faults->channel_enabled()) {
      fault::FaultyRetrievalResult r =
          faults->Retrieve(system.schedule(), now, ws.needed, index_mode,
                           trace);
      outcome.stats = r.stats;
      outcome.fault_losses = r.losses;
      outcome.fault_corruptions = r.corruptions;
      outcome.fault_deadline_hit = r.deadline_hit;
      if (!r.complete()) {
        outcome.degraded = true;
        outcome.failed_buckets = std::move(r.failed);
      }
      ws.retrieved = std::move(r.received);
      retrieved = &ws.retrieved;
    } else {
      outcome.stats = broadcast::RetrieveBuckets(system.schedule(), now,
                                                 ws.needed, index_mode, trace);
      complete_cover = sole_cover != nullptr && !sole_cover->ranges.empty();
    }
    if (trace != nullptr) {
      trace->Span("sbwq.fallback", now, now + outcome.stats.access_latency);
    }
    if (complete_cover) {
      // The memoized bucket content carries its own SoA transpose: the
      // residual-window filter is a single kernel pass, no per-query
      // transpose.
      const std::vector<spatial::Poi>& memo =
          single_span ? ws.SpanPois(system, sole_cover)
                      : ws.RangePois(system, sole_cover);
      const kernels::PoiSlab& mslab =
          single_span ? sole_cover->span_slab : sole_cover->range_slab;
      uint32_t* idx = ws.slab.IdxFor(mslab.size());
      const size_t m = kernels::SelectInWindow(
          mslab.xs(), mslab.ys(), mslab.size(), window.x1, window.y1,
          window.x2, window.y2, idx);
      for (size_t j = 0; j < m; ++j) pool.push_back(memo[idx[j]]);
    } else {
      system.CollectPois(*retrieved, &ws.collect_scratch, &ws.known_pois);
      const size_t n = ws.known_pois.size();
      ws.slab.slab.Assign(ws.known_pois.data(), n);
      uint32_t* idx = ws.slab.IdxFor(n);
      const size_t m =
          kernels::SelectInWindow(ws.slab.slab.xs(), ws.slab.slab.ys(), n,
                                  window.x1, window.y1, window.x2, window.y2,
                                  idx);
      for (size_t j = 0; j < m; ++j) pool.push_back(ws.known_pois[idx[j]]);
    }
  }

  if (peer_pool_size > 0) {
    std::sort(pool.begin(), pool.end(),
              [](const spatial::Poi& a, const spatial::Poi& b) {
                return a.id < b.id;
              });
    pool.erase(std::unique(pool.begin(), pool.end()), pool.end());
  }
  // Both resolution paths end with complete knowledge of the window — except
  // when the retrieval degraded, in which case caching the window would
  // poison the peer network with a false completeness claim.
  if (!outcome.degraded) {
    outcome.cacheable.region = window;
    outcome.cacheable.pois = outcome.pois;
  }
}

}  // namespace internal
}  // namespace lbsq::core
