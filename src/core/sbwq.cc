#include "core/sbwq.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "fault/faulty_channel.h"

namespace lbsq::core {

void SbwqOptions::Validate() const {
  LBSQ_CHECK(retrieval == onair::WindowRetrieval::kSingleSpan ||
             retrieval == onair::WindowRetrieval::kPartitionedRanges);
}

SbwqOutcome RunSbwq(const geom::Rect& window, const SbwqOptions& options,
                    const std::vector<PeerData>& peers,
                    const broadcast::BroadcastSystem& system, int64_t now,
                    obs::TraceRecorder* trace, fault::ChannelSession* faults) {
  options.Validate();
  LBSQ_CHECK(!window.empty());
  SbwqOutcome outcome;

  // Merge peer verified regions and pool the shared POIs that overlap w.
  std::vector<spatial::Poi> pool;
  for (const PeerData& peer : peers) {
    for (const VerifiedRegion& vr : peer.regions) {
      outcome.mvr.Add(vr.region);
      for (const spatial::Poi& poi : vr.pois) {
        if (window.Contains(poi.pos)) pool.push_back(poi);
      }
    }
  }

  // Residual windows w' = w \ MVR.
  outcome.mvr.SubtractFrom(window, &outcome.residual_windows);
  double residual_area = 0.0;
  for (const geom::Rect& r : outcome.residual_windows) {
    residual_area += r.area();
  }
  outcome.residual_fraction =
      window.area() > 0.0 ? residual_area / window.area() : 0.0;
  if (trace != nullptr) {
    // MVR merge and subtraction are pure computation (instantaneous in
    // broadcast time); the counter carries the coverage outcome.
    trace->Span("sbwq.mvr", now, now);
    trace->Counter("sbwq.residual_fraction", outcome.residual_fraction);
  }

  if (outcome.residual_windows.empty()) {
    // w lies inside the MVR: the pooled data is complete for w.
    outcome.resolved_by_peers = true;
    if (trace != nullptr) trace->Counter("sbwq.peers_resolved", 1.0);
  } else {
    // Solve the residual window(s) on air. Without window reduction the
    // baseline retrieves the whole original window.
    std::vector<int64_t> needed;
    if (options.use_window_reduction) {
      for (const geom::Rect& residual : outcome.residual_windows) {
        const std::vector<int64_t> part =
            onair::BucketsForWindow(system, residual, options.retrieval);
        needed.insert(needed.end(), part.begin(), part.end());
      }
    } else {
      needed = onair::BucketsForWindow(system, window, options.retrieval);
    }
    std::sort(needed.begin(), needed.end());
    needed.erase(std::unique(needed.begin(), needed.end()), needed.end());
    outcome.buckets = needed;
    broadcast::IndexReadMode index_mode =
        broadcast::IndexReadMode::FlatDirectory();
    if (system.tree_index() != nullptr) {
      std::vector<hilbert::IndexRange> lookups;
      if (options.use_window_reduction) {
        for (const geom::Rect& residual : outcome.residual_windows) {
          const auto part = system.grid().CoverRect(residual);
          lookups.insert(lookups.end(), part.begin(), part.end());
        }
      } else {
        lookups = system.grid().CoverRect(window);
      }
      index_mode =
          broadcast::IndexReadMode::TreePaths(system.IndexReadBuckets(lookups));
    }
    std::vector<int64_t> retrieved = needed;
    if (faults != nullptr && faults->channel_enabled()) {
      fault::FaultyRetrievalResult r =
          faults->Retrieve(system.schedule(), now, needed, index_mode, trace);
      outcome.stats = r.stats;
      outcome.fault_losses = r.losses;
      outcome.fault_corruptions = r.corruptions;
      outcome.fault_deadline_hit = r.deadline_hit;
      if (!r.complete()) {
        outcome.degraded = true;
        outcome.failed_buckets = std::move(r.failed);
      }
      retrieved = std::move(r.received);
    } else {
      outcome.stats = broadcast::RetrieveBuckets(system.schedule(), now,
                                                 needed, index_mode, trace);
    }
    if (trace != nullptr) {
      trace->Span("sbwq.fallback", now, now + outcome.stats.access_latency);
    }
    for (const spatial::Poi& poi : system.CollectPois(retrieved)) {
      if (window.Contains(poi.pos)) pool.push_back(poi);
    }
  }

  std::sort(pool.begin(), pool.end(),
            [](const spatial::Poi& a, const spatial::Poi& b) {
              return a.id < b.id;
            });
  pool.erase(std::unique(pool.begin(), pool.end()), pool.end());
  outcome.pois = std::move(pool);
  // Both resolution paths end with complete knowledge of the window — except
  // when the retrieval degraded, in which case caching the window would
  // poison the peer network with a false completeness claim.
  if (!outcome.degraded) {
    outcome.cacheable = VerifiedRegion{window, outcome.pois};
  }
  return outcome;
}

}  // namespace lbsq::core
