#ifndef LBSQ_CORE_RESULT_HEAP_H_
#define LBSQ_CORE_RESULT_HEAP_H_

#include <optional>
#include <vector>

#include "spatial/poi.h"

/// \file
/// The heap H of the paper (Table 2): the ordered candidate answer set a
/// sharing-based NN query accumulates, each entry flagged verified or
/// unverified and annotated with its correctness probability and surpassing
/// ratio. Section 3.3.3 classifies H into six states which determine the
/// search bounds available for broadcast-channel data filtering.

namespace lbsq::core {

/// One candidate nearest neighbor.
struct HeapEntry {
  spatial::Poi poi;
  /// Euclidean distance to the query point.
  double distance = 0.0;
  /// True when Lemma 3.1 verified this entry as a top-v NN.
  bool verified = false;
  /// Lemma 3.2 probability that this entry is the true i-th NN
  /// (1 for verified entries).
  double correctness = 1.0;
  /// Ratio of this entry's distance to the last verified entry's distance
  /// (the worst-case extra-travel metric); 1 for verified entries and +inf
  /// when no entry is verified.
  double surpassing_ratio = 1.0;
};

/// The six states of §3.3.3, plus the terminal "query fulfilled" state in
/// which all k entries are verified (the paper's states only classify heaps
/// that did not reach k verified objects).
enum class HeapState {
  kFulfilled = 0,          // full, all k entries verified
  kFullMixed = 1,          // full, verified + unverified
  kFullUnverified = 2,     // full, only unverified
  kPartialMixed = 3,       // not full, verified + unverified
  kPartialVerified = 4,    // not full, only verified
  kPartialUnverified = 5,  // not full, only unverified
  kEmpty = 6,              // no entries
};

/// Candidate heap for a k-NN query. Entries are kept in ascending distance
/// order; all verified entries precede all unverified ones (NNV inserts in
/// ascending order and verification is monotone in distance).
class ResultHeap {
 public:
  /// Heap for a query requesting `k` >= 1 neighbors.
  explicit ResultHeap(int k);

  /// Empties the heap and retargets it to `k` >= 1 neighbors, keeping the
  /// entry storage (the batch execution path reuses heaps across queries).
  void Reset(int k);

  /// Requested result size.
  int k() const { return k_; }
  /// Current entries, ascending by distance.
  const std::vector<HeapEntry>& entries() const { return entries_; }
  /// Mutable access for post-hoc annotation (correctness, surpassing ratio).
  std::vector<HeapEntry>* mutable_entries() { return &entries_; }

  /// True when |H| == k.
  bool full() const { return static_cast<int>(entries_.size()) == k_; }
  /// Number of verified entries.
  int verified_count() const;
  /// Number of unverified entries.
  int unverified_count() const {
    return static_cast<int>(entries_.size()) - verified_count();
  }
  /// True when all k requested entries are present and verified.
  bool fully_verified() const { return full() && verified_count() == k_; }

  /// Appends an entry (distance must be >= the last entry's distance, and a
  /// verified entry must not follow an unverified one). Returns false when
  /// the heap is already full.
  bool Push(const HeapEntry& entry);

  /// The state classification of §3.3.3.
  HeapState State() const;

  /// Search upper bound: distance of the last (k-th) entry when the heap is
  /// full (states 1 and 2); the true k-th NN distance cannot exceed it.
  std::optional<double> UpperBound() const;

  /// Search lower bound: distance of the last verified entry (states 1, 3,
  /// 4); every object within this distance is already known.
  std::optional<double> LowerBound() const;

 private:
  int k_;
  std::vector<HeapEntry> entries_;
};

}  // namespace lbsq::core

#endif  // LBSQ_CORE_RESULT_HEAP_H_
