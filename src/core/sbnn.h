#ifndef LBSQ_CORE_SBNN_H_
#define LBSQ_CORE_SBNN_H_

#include <cstdint>
#include <vector>

#include "broadcast/client_protocol.h"
#include "broadcast/system.h"
#include "common/observability.h"
#include "core/nnv.h"
#include "core/query_result.h"
#include "core/verified_region.h"
#include "geom/point.h"
#include "spatial/poi.h"

/// \file
/// The Sharing-Based Nearest Neighbor query — Algorithm 2 of the paper.
/// First NNV attempts to answer from peer caches; if k verified neighbors
/// are found the query is fulfilled with zero broadcast access. Otherwise
/// the user may accept an approximate answer (heap full, all unverified
/// entries above a correctness threshold), or the query falls back to the
/// broadcast channel with the §3.3.3 data filtering: the heap's upper bound
/// shrinks the search circle, and the lower-bound circle C_i excuses every
/// packet it fully covers.
///
/// Execution goes through `core::QueryEngine` (`Execute` / `ExecuteBatch`);
/// the former free function `RunSbnn` is internal to the engine now.

namespace lbsq::core {

/// User-facing SBNN knobs.
struct SbnnOptions {
  /// Number of neighbors requested.
  int k = 5;
  /// Whether the user accepts an approximate (partially unverified) answer.
  bool accept_approximate = true;
  /// Minimum Lemma 3.2 correctness probability an unverified entry needs
  /// for the approximate answer to be acceptable (the paper's experiments
  /// use 50%).
  double min_correctness = 0.5;
  /// Enables the §3.3.3 broadcast-channel data filtering on fallback; when
  /// false the fallback behaves exactly like the on-air baseline.
  bool use_filtering = true;
  /// When true, the fallback search radius is the minimum of the heap's
  /// upper bound and the air-index-derived bound (both bound the true k-th
  /// NN distance, so the minimum is sound and downloads less). The paper's
  /// client uses the heap bound alone when H is full — which retrieves a
  /// wider region whose complete content then feeds the cache, trading
  /// download volume for future sharing coverage. Off by default to match
  /// the paper; the ablation bench quantifies the trade.
  bool tighten_with_index_bound = false;
  /// Multiplies the fallback search radius (>= 1). The retrieval then covers
  /// a region larger than the query strictly needs; the surplus is complete
  /// verified knowledge that feeds the cache — prefetching for future
  /// queries (essential for continuous queries on a moving host, where a
  /// cache exactly the size of the k-NN disc is exhausted by the first
  /// position change).
  double prefetch_radius_factor = 1.0;

  /// Aborts (LBSQ_CHECK) unless every field is in its legal range: k >= 1,
  /// min_correctness in [0, 1], prefetch_radius_factor >= 1. Called at every
  /// public entry point that consumes these options.
  void Validate() const;
};

/// How a query was ultimately resolved.
enum class ResolvedBy {
  /// All k results verified from peer data; no broadcast access.
  kPeersVerified,
  /// Heap full and the user accepted the approximate result.
  kPeersApproximate,
  /// The broadcast channel supplied (part of) the answer.
  kBroadcast,
};

/// Outcome of one SBNN execution. The cost/degradation/cacheable fields
/// shared with SBWQ live in the QueryResultCommon base; for peer-verified
/// answers `cacheable` is the axis-aligned square inscribed in the disc of
/// the last verified neighbor, for broadcast answers it is the search MBR,
/// whose content is fully known from downloaded buckets plus peer data
/// covering skipped packets.
struct SbnnOutcome : QueryResultCommon {
  ResolvedBy resolved_by = ResolvedBy::kBroadcast;
  /// The answer, ascending by distance. Exact unless kPeersApproximate, in
  /// which case unverified members carry their correctness in `nnv.heap`.
  std::vector<spatial::PoiDistance> neighbors;
  /// Diagnostics: the NNV result this outcome was derived from.
  NnvResult nnv;
  /// Buckets the lower-bound circle C_i excused from download.
  int64_t buckets_skipped = 0;

  explicit SbnnOutcome(int k) : nnv(k) {}

  /// Back to the freshly-constructed state for a query of `k` neighbors,
  /// keeping all vector capacity (the batch execution path reuses outcomes).
  void Reset(int k) {
    ResetCommon();
    resolved_by = ResolvedBy::kBroadcast;
    neighbors.clear();
    nnv.Reset(k);
    buckets_skipped = 0;
  }
};

}  // namespace lbsq::core

#endif  // LBSQ_CORE_SBNN_H_
