#ifndef LBSQ_CORE_SBNN_H_
#define LBSQ_CORE_SBNN_H_

#include <cstdint>
#include <vector>

#include "broadcast/client_protocol.h"
#include "broadcast/system.h"
#include "common/observability.h"
#include "core/nnv.h"
#include "core/verified_region.h"
#include "geom/point.h"
#include "spatial/poi.h"

/// \file
/// The Sharing-Based Nearest Neighbor query — Algorithm 2 of the paper.
/// First NNV attempts to answer from peer caches; if k verified neighbors
/// are found the query is fulfilled with zero broadcast access. Otherwise
/// the user may accept an approximate answer (heap full, all unverified
/// entries above a correctness threshold), or the query falls back to the
/// broadcast channel with the §3.3.3 data filtering: the heap's upper bound
/// shrinks the search circle, and the lower-bound circle C_i excuses every
/// packet it fully covers.

namespace lbsq::fault {
class ChannelSession;
}  // namespace lbsq::fault

namespace lbsq::core {

/// User-facing SBNN knobs.
struct SbnnOptions {
  /// Number of neighbors requested.
  int k = 5;
  /// Whether the user accepts an approximate (partially unverified) answer.
  bool accept_approximate = true;
  /// Minimum Lemma 3.2 correctness probability an unverified entry needs
  /// for the approximate answer to be acceptable (the paper's experiments
  /// use 50%).
  double min_correctness = 0.5;
  /// Enables the §3.3.3 broadcast-channel data filtering on fallback; when
  /// false the fallback behaves exactly like the on-air baseline.
  bool use_filtering = true;
  /// When true, the fallback search radius is the minimum of the heap's
  /// upper bound and the air-index-derived bound (both bound the true k-th
  /// NN distance, so the minimum is sound and downloads less). The paper's
  /// client uses the heap bound alone when H is full — which retrieves a
  /// wider region whose complete content then feeds the cache, trading
  /// download volume for future sharing coverage. Off by default to match
  /// the paper; the ablation bench quantifies the trade.
  bool tighten_with_index_bound = false;
  /// Multiplies the fallback search radius (>= 1). The retrieval then covers
  /// a region larger than the query strictly needs; the surplus is complete
  /// verified knowledge that feeds the cache — prefetching for future
  /// queries (essential for continuous queries on a moving host, where a
  /// cache exactly the size of the k-NN disc is exhausted by the first
  /// position change).
  double prefetch_radius_factor = 1.0;

  /// Aborts (LBSQ_CHECK) unless every field is in its legal range: k >= 1,
  /// min_correctness in [0, 1], prefetch_radius_factor >= 1. Called at every
  /// public entry point that consumes these options.
  void Validate() const;
};

/// How a query was ultimately resolved.
enum class ResolvedBy {
  /// All k results verified from peer data; no broadcast access.
  kPeersVerified,
  /// Heap full and the user accepted the approximate result.
  kPeersApproximate,
  /// The broadcast channel supplied (part of) the answer.
  kBroadcast,
};

/// Outcome of one SBNN execution.
struct SbnnOutcome {
  ResolvedBy resolved_by = ResolvedBy::kBroadcast;
  /// The answer, ascending by distance. Exact unless kPeersApproximate, in
  /// which case unverified members carry their correctness in `nnv.heap`.
  std::vector<spatial::PoiDistance> neighbors;
  /// Diagnostics: the NNV result this outcome was derived from.
  NnvResult nnv;
  /// Broadcast cost (all zero for peer-resolved queries).
  broadcast::AccessStats stats;
  /// Buckets downloaded on fallback.
  std::vector<int64_t> buckets;
  /// Buckets the lower-bound circle C_i excused from download.
  int64_t buckets_skipped = 0;
  /// The verified knowledge this query produced, ready for insertion into
  /// the querier's own cache (empty region when the query yielded no
  /// complete coverage). For peer-verified answers this is the axis-aligned
  /// square inscribed in the disc of the last verified neighbor; for
  /// broadcast answers it is the search MBR, whose content is fully known
  /// from downloaded buckets plus peer data covering skipped packets.
  VerifiedRegion cacheable;
  /// True when a faulty channel prevented complete retrieval: the answer is
  /// best-effort (assembled from received buckets and peer data only) and
  /// `cacheable` is empty — a degraded query never claims verified
  /// knowledge it does not have.
  bool degraded = false;
  /// Buckets given up on (retry budget or deadline exhausted).
  std::vector<int64_t> failed_buckets;
  /// Channel accounting for this query (zero without fault injection).
  int64_t fault_losses = 0;
  int64_t fault_corruptions = 0;
  bool fault_deadline_hit = false;

  explicit SbnnOutcome(int k) : nnv(k) {}
};

/// Executes SBNN for query point `q` at slot `now` against the data shared
/// by `peers`, falling back to `system`'s broadcast channel when sharing
/// cannot fulfill the query. `poi_density` parameterizes Lemma 3.2.
///
/// A non-null `trace` receives the per-stage breakdown: an `sbnn.nnv` span
/// with candidate/verified counters, the resolution marker
/// (`sbnn.peers_verified`, `sbnn.approx_accept`, or an `sbnn.fallback` span
/// covering the broadcast access), the protocol-stage spans of
/// RetrieveBuckets, and the `sbnn.buckets_skipped` filter counter.
///
/// A non-null `faults` with an enabled channel routes the fallback retrieval
/// through the faulty channel; buckets that could not be retrieved mark the
/// outcome `degraded` (see SbnnOutcome). A null or disabled session takes
/// the fault-free path, bit-identical to the five-argument overload.
SbnnOutcome RunSbnn(geom::Point q, const SbnnOptions& options,
                    const std::vector<PeerData>& peers, double poi_density,
                    const broadcast::BroadcastSystem& system, int64_t now,
                    obs::TraceRecorder* trace = nullptr,
                    fault::ChannelSession* faults = nullptr);

}  // namespace lbsq::core

#endif  // LBSQ_CORE_SBNN_H_
