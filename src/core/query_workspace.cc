#include "core/query_workspace.h"

#include "common/check.h"

namespace lbsq::core {

void QueryWorkspace::Prepare(const broadcast::BroadcastSystem& system,
                             int64_t cycle) {
  const void* tag = &system;
  // The POI count and world epoch guard against a different system reusing
  // the same address after destruction (the epoch-publish path of the
  // dynamic world frees the old system and can allocate the new one at the
  // recycled address); workspaces are meant to be scoped to one
  // engine/thread, this catches accidental cross-system reuse too.
  if (tag != system_tag_ || system.pois().size() != system_pois_ ||
      system.epoch() != system_epoch_ || cycle != cycle_) {
    memo_.clear();
    system_tag_ = tag;
    system_pois_ = system.pois().size();
    system_epoch_ = system.epoch();
    cycle_ = cycle;
  }
}

CoverEntry& QueryWorkspace::Cover(const broadcast::BroadcastSystem& system,
                                  const geom::Rect& rect) {
  const hilbert::HilbertGrid& grid = system.grid();
  const geom::Rect clamped = rect.Intersection(grid.world());
  CoverKey key;
  if (clamped.empty()) {
    key.outside_world = true;
  } else {
    // CoverRect is a pure function of the two corner cells of the clamped
    // rectangle, so they are the whole memo key.
    const hilbert::CellXY lo = grid.CellOf({clamped.x1, clamped.y1});
    const hilbert::CellXY hi = grid.CellOf({clamped.x2, clamped.y2});
    key.x1 = lo.x;
    key.y1 = lo.y;
    key.x2 = hi.x;
    key.y2 = hi.y;
  }
  auto [it, inserted] = memo_.try_emplace(key);
  if (inserted) it->second.ranges = grid.CoverRect(rect);
  return it->second;
}

const std::vector<int64_t>& QueryWorkspace::SpanBuckets(
    const broadcast::BroadcastSystem& system, CoverEntry* entry) {
  LBSQ_CHECK(!entry->ranges.empty());
  if (!entry->have_span) {
    entry->span_buckets = system.index().BucketsForSpan(
        entry->ranges.front().lo, entry->ranges.back().hi);
    entry->have_span = true;
  }
  return entry->span_buckets;
}

const std::vector<int64_t>& QueryWorkspace::RangeBuckets(
    const broadcast::BroadcastSystem& system, CoverEntry* entry) {
  LBSQ_CHECK(!entry->ranges.empty());
  if (!entry->have_ranges) {
    entry->range_buckets = system.index().BucketsForRanges(entry->ranges);
    entry->have_ranges = true;
  }
  return entry->range_buckets;
}

const std::vector<spatial::Poi>& QueryWorkspace::SpanPois(
    const broadcast::BroadcastSystem& system, CoverEntry* entry) {
  if (!entry->have_span_pois) {
    system.CollectPois(SpanBuckets(system, entry), &collect_scratch,
                       &entry->span_pois);
    entry->span_slab.Assign(entry->span_pois.data(), entry->span_pois.size());
    entry->have_span_pois = true;
  }
  return entry->span_pois;
}

const std::vector<spatial::Poi>& QueryWorkspace::RangePois(
    const broadcast::BroadcastSystem& system, CoverEntry* entry) {
  if (!entry->have_range_pois) {
    system.CollectPois(RangeBuckets(system, entry), &collect_scratch,
                       &entry->range_pois);
    entry->range_slab.Assign(entry->range_pois.data(),
                             entry->range_pois.size());
    entry->have_range_pois = true;
  }
  return entry->range_pois;
}

int64_t QueryWorkspace::TreeReadBuckets(
    const broadcast::BroadcastSystem& system, CoverEntry* entry) {
  if (entry->tree_read_buckets < 0) {
    entry->tree_read_buckets = system.IndexReadBuckets(entry->ranges);
  }
  return entry->tree_read_buckets;
}

}  // namespace lbsq::core
