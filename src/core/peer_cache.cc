#include "core/peer_cache.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace lbsq::core {

namespace {

// Keeps only the POIs whose position lies inside the region.
void FilterToRegion(VerifiedRegion* vr) {
  std::erase_if(vr->pois, [vr](const spatial::Poi& p) {
    return !vr->region.Contains(p.pos);
  });
}

// Replacement score (higher = evicted sooner): distance from the host to the
// entry's center, doubled when the entry lies behind the direction of
// motion (Ren & Dunham's direction + data-distance policy).
double EvictionScore(const VerifiedRegion& vr, geom::Point host_pos,
                     geom::Point heading) {
  const geom::Point center = vr.region.center();
  double score = geom::Distance(center, host_pos);
  const geom::Point to_entry = center - host_pos;
  if (geom::Norm(heading) > 0.0 && geom::Dot(heading, to_entry) < 0.0) {
    score *= 2.0;
  }
  return score;
}

}  // namespace

PeerCache::PeerCache(int poi_capacity, int max_regions, CachePolicy policy)
    : poi_capacity_(poi_capacity),
      max_regions_(max_regions),
      policy_(policy) {
  LBSQ_CHECK(poi_capacity >= 0);
  LBSQ_CHECK(max_regions >= 1);
}

int64_t PeerCache::TotalPois() const {
  int64_t total = 0;
  for (const VerifiedRegion& vr : entries_) {
    total += static_cast<int64_t>(vr.pois.size());
  }
  return total;
}

PeerData PeerCache::Share() const { return PeerData{entries_}; }

VerifiedRegion PeerCache::ShrinkToCapacity(VerifiedRegion vr,
                                           geom::Point anchor, int capacity) {
  FilterToRegion(&vr);
  if (static_cast<int>(vr.pois.size()) <= capacity) return vr;
  if (capacity <= 0) return VerifiedRegion{};

  // Keep the largest anchored square holding at most `capacity` POIs: rank
  // the POIs by max-norm (Chebyshev) distance to the anchor — exactly the
  // order in which a growing square absorbs them — and cut halfway between
  // the capacity-th and the (capacity+1)-th.
  std::vector<double> distances;
  distances.reserve(vr.pois.size());
  for (const spatial::Poi& p : vr.pois) {
    distances.push_back(std::max(std::abs(p.pos.x - anchor.x),
                                 std::abs(p.pos.y - anchor.y)));
  }
  std::nth_element(distances.begin(),
                   distances.begin() + static_cast<long>(capacity),
                   distances.end());
  const double outer = distances[static_cast<size_t>(capacity)];
  const double inner = *std::max_element(
      distances.begin(), distances.begin() + static_cast<long>(capacity));
  // Coincident max-norm distances (ties) can still overflow the capacity;
  // shrink further until the entry fits or degenerates.
  double half = (inner + outer) / 2.0;
  const geom::Rect original = vr.region;
  for (int attempt = 0; attempt < 64; ++attempt) {
    VerifiedRegion candidate = vr;
    candidate.region =
        original.Intersection(geom::Rect::CenteredSquare(anchor, half));
    if (candidate.region.empty() || candidate.region.area() == 0.0) {
      return VerifiedRegion{};
    }
    FilterToRegion(&candidate);
    if (static_cast<int>(candidate.pois.size()) <= capacity) return candidate;
    half *= 0.75;
  }
  return VerifiedRegion{};
}

VerifiedRegion PeerCache::ReduceToCollectiveMbr(VerifiedRegion vr,
                                                geom::Point anchor,
                                                int capacity) {
  FilterToRegion(&vr);
  if (static_cast<int>(vr.pois.size()) <= capacity) return vr;
  if (capacity <= 0) return VerifiedRegion{};
  std::sort(vr.pois.begin(), vr.pois.end(),
            [anchor](const spatial::Poi& a, const spatial::Poi& b) {
              const double da = geom::DistanceSquared(a.pos, anchor);
              const double db = geom::DistanceSquared(b.pos, anchor);
              if (da != db) return da < db;
              return a.id < b.id;
            });
  vr.pois.resize(static_cast<size_t>(capacity));
  geom::Rect mbr;
  for (const spatial::Poi& p : vr.pois) mbr.Expand(p.pos);
  // "store all of them and their collective MBR" — the MBR of the kept POIs,
  // clipped to the region that was actually observed.
  vr.region = vr.region.Intersection(mbr);
  return vr;
}

void PeerCache::Insert(VerifiedRegion vr, geom::Point anchor,
                       geom::Point host_pos, geom::Point heading) {
  if (vr.region.empty() || vr.region.area() == 0.0) return;
  vr = policy_ == CachePolicy::kSoundShrink
           ? ShrinkToCapacity(std::move(vr), anchor, poi_capacity_)
           : ReduceToCollectiveMbr(std::move(vr), anchor, poi_capacity_);
  if (vr.region.empty()) return;

  // Drop entries subsumed by the new region; skip the insert when an
  // existing entry already covers it.
  for (const VerifiedRegion& existing : entries_) {
    if (existing.region.ContainsRect(vr.region)) return;
  }
  std::erase_if(entries_, [&vr](const VerifiedRegion& existing) {
    return vr.region.ContainsRect(existing.region);
  });

  entries_.push_back(std::move(vr));
  EnforceCapacity(host_pos, heading, entries_.size() - 1);
}

void PeerCache::EnforceCapacity(geom::Point host_pos, geom::Point heading,
                                size_t protect_index) {
  while (TotalPois() > poi_capacity_ ||
         static_cast<int>(entries_.size()) > max_regions_) {
    size_t worst = entries_.size();
    double worst_score = -std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < entries_.size(); ++i) {
      if (i == protect_index) continue;
      const double score = EvictionScore(entries_[i], host_pos, heading);
      if (score > worst_score) {
        worst_score = score;
        worst = i;
      }
    }
    if (worst == entries_.size()) {
      // Only the protected entry remains; it already fits (ShrinkToCapacity
      // bounded it by the POI capacity) and one region never exceeds the
      // region limit.
      break;
    }
    if (worst < protect_index) --protect_index;
    entries_.erase(entries_.begin() + static_cast<long>(worst));
  }
}

}  // namespace lbsq::core
