#ifndef LBSQ_CORE_NNV_H_
#define LBSQ_CORE_NNV_H_

#include <span>
#include <vector>

#include "core/result_heap.h"
#include "core/verified_region.h"
#include "geom/point.h"
#include "geom/rect_region.h"
#include "kernels/poi_slab.h"

/// \file
/// Nearest Neighbor Verification — Algorithm 1 of the paper, the core of the
/// sharing-based nearest neighbor query. Merges the peers' verified regions
/// into the MVR, sorts the pooled candidate POIs by distance, and verifies
/// each candidate closer to the query point than the nearest MVR boundary
/// edge (Lemma 3.1). Unverified candidates are annotated with their Lemma
/// 3.2 correctness probability and surpassing ratio.
///
/// Note: Algorithm 1 as printed increments the loop variable only in the
/// `else` branch; that is a typographical slip (the loop would never advance
/// past a verified POI). We advance per iteration, matching the prose.

namespace lbsq::core {

/// Outcome of one NNV run.
struct NnvResult {
  /// The candidate heap H.
  ResultHeap heap;
  /// The merged verified region MVR.
  geom::RectRegion mvr;
  /// ||q, e_s||: distance from the query point to the nearest boundary edge
  /// of the MVR; 0 when q lies outside the MVR (nothing can be verified).
  double boundary_distance = 0.0;
  /// Number of distinct candidate POIs pooled from the peers.
  int candidate_count = 0;
  /// All distinct candidates, ascending by distance to q. These are genuine
  /// server objects; the broadcast fallback merges them with downloaded
  /// buckets to assemble exact answers despite skipped packets.
  std::vector<spatial::PoiDistance> candidates;

  explicit NnvResult(int k) : heap(k) {}

  /// Back to the freshly-constructed state for a query of `k` neighbors,
  /// keeping all vector capacity (the batch execution path reuses results).
  void Reset(int k) {
    heap.Reset(k);
    mvr.Clear();
    boundary_distance = 0.0;
    candidate_count = 0;
    candidates.clear();
  }
};

/// Runs NNV for query point `q` requesting `k` neighbors over the data
/// shared by `peers`. `poi_density` (objects per square unit) parameterizes
/// the Lemma 3.2 correctness probabilities of unverified entries.
NnvResult NearestNeighborVerify(geom::Point q, int k,
                                std::span<const PeerData> peers,
                                double poi_density);

/// Braced-list convenience: `NearestNeighborVerify(q, k, {peer}, d)` — a
/// braced initializer cannot deduce to `std::span` on its own.
inline NnvResult NearestNeighborVerify(geom::Point q, int k,
                                       std::initializer_list<PeerData> peers,
                                       double poi_density) {
  return NearestNeighborVerify(
      q, k, std::span<const PeerData>(peers.begin(), peers.size()),
      poi_density);
}

/// Allocation-free variant: writes into `result` (Reset internally) using
/// `pool` as candidate-merge scratch, `geom_scratch` (when non-null) for
/// the MVR geometry kernels, and `slab_scratch` (when non-null) for the
/// SIMD candidate-distance batch. Bit-identical to the value-returning
/// overload; at steady state (warm capacities) it performs no heap
/// allocations.
void NearestNeighborVerify(geom::Point q, int k,
                           std::span<const PeerData> peers,
                           double poi_density,
                           std::vector<spatial::Poi>* pool,
                           NnvResult* result,
                           geom::RectRegionScratch* geom_scratch = nullptr,
                           kernels::SlabScratch* slab_scratch = nullptr);

}  // namespace lbsq::core

#endif  // LBSQ_CORE_NNV_H_
