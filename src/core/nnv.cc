#include "core/nnv.h"

#include <algorithm>
#include <limits>

#include "common/check.h"
#include "core/probability.h"
#include "geom/circle.h"
#include "kernels/kernels.h"

namespace lbsq::core {

NnvResult NearestNeighborVerify(geom::Point q, int k,
                                std::span<const PeerData> peers,
                                double poi_density) {
  NnvResult result(k);
  std::vector<spatial::Poi> pool;
  NearestNeighborVerify(q, k, peers, poi_density, &pool, &result);
  return result;
}

void NearestNeighborVerify(geom::Point q, int k,
                           std::span<const PeerData> peers,
                           double poi_density,
                           std::vector<spatial::Poi>* pool,
                           NnvResult* result,
                           geom::RectRegionScratch* geom_scratch,
                           kernels::SlabScratch* slab_scratch) {
  LBSQ_CHECK(k >= 1);
  LBSQ_CHECK(poi_density >= 0.0);
  LBSQ_CHECK(pool != nullptr);
  LBSQ_CHECK(result != nullptr);
  geom::RectRegionScratch local_scratch;
  geom::RectRegionScratch& scratch =
      geom_scratch != nullptr ? *geom_scratch : local_scratch;
  kernels::SlabScratch local_slab;
  kernels::SlabScratch& slab =
      slab_scratch != nullptr ? *slab_scratch : local_slab;
  result->Reset(k);

  // Merge the peers' verified regions into the MVR and pool their POIs.
  pool->clear();
  for (const PeerData& peer : peers) {
    for (const VerifiedRegion& vr : peer.regions) {
      result->mvr.Add(vr.region, &scratch);
      pool->insert(pool->end(), vr.pois.begin(), vr.pois.end());
    }
  }
  // Deduplicate by id (multiple peers may cache the same object).
  std::sort(pool->begin(), pool->end(),
            [](const spatial::Poi& a, const spatial::Poi& b) {
              return a.id < b.id;
            });
  pool->erase(std::unique(pool->begin(), pool->end()), pool->end());
  result->candidate_count = static_cast<int>(pool->size());

  // Sort candidates by distance to q (deterministic ties). Distances come
  // from the SIMD batch kernel over the pool's SoA transpose — bit-identical
  // to per-element geom::Distance at every dispatch tier.
  const size_t pool_size = pool->size();
  slab.slab.Assign(pool->data(), pool_size);
  double* dist = slab.DistFor(pool_size);
  kernels::DistanceBatch(slab.slab.xs(), slab.slab.ys(), pool_size, q.x, q.y,
                         dist);
  result->candidates.reserve(pool_size);
  for (size_t i = 0; i < pool_size; ++i) {
    result->candidates.push_back(spatial::PoiDistance{(*pool)[i], dist[i]});
  }
  std::sort(result->candidates.begin(), result->candidates.end());

  // ||q, e_s||: every object strictly within this distance of q lies inside
  // the MVR and is therefore in the pool (Lemma 3.1's precondition).
  result->boundary_distance = result->mvr.BoundaryDistance(q, &scratch);

  // Fill the heap: candidates no farther than the boundary distance are
  // verified top-v NNs; the rest stay unverified until the heap is full.
  for (const spatial::PoiDistance& candidate : result->candidates) {
    if (result->heap.full()) break;
    HeapEntry entry;
    entry.poi = candidate.poi;
    entry.distance = candidate.distance;
    entry.verified = candidate.distance <= result->boundary_distance;
    result->heap.Push(entry);
  }

  // Annotate unverified entries with correctness probability (Lemma 3.2)
  // and surpassing ratio.
  const auto lower = result->heap.LowerBound();
  const double last_verified =
      lower.has_value() ? *lower : 0.0;  // 0 -> infinite surpassing ratio
  for (HeapEntry& entry : *result->heap.mutable_entries()) {
    if (entry.verified) continue;
    const geom::Circle disc{q, entry.distance};
    const double uncovered = result->mvr.DiscUncoveredArea(disc);
    entry.correctness = CorrectnessProbability(poi_density, uncovered);
    entry.surpassing_ratio = SurpassingRatio(entry.distance, last_verified);
  }
}

}  // namespace lbsq::core
