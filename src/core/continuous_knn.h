#ifndef LBSQ_CORE_CONTINUOUS_KNN_H_
#define LBSQ_CORE_CONTINUOUS_KNN_H_

#include <cstdint>
#include <vector>

#include "core/nnv.h"
#include "core/peer_cache.h"
#include "core/query_engine.h"
#include "core/query_workspace.h"
#include "core/sbnn.h"
#include "geom/point.h"
#include "spatial/poi.h"

/// \file
/// Continuous kNN for a moving host — the natural extension of the paper's
/// one-shot queries (its conclusion points at future work on the sharing
/// architecture; a navigator asking "nearest gas station, continuously" is
/// the canonical use). Each position update first attempts Lemma 3.1
/// verification against the host's *own* cache: while the host remains deep
/// inside previously verified territory, updates cost nothing. Only when
/// its knowledge no longer covers the k-NN disc does the update fall back
/// to the full SBNN pipeline (peers, then broadcast) through the bound
/// `QueryEngine`, and the result of that refresh is inserted back into the
/// cache, typically buying many more free updates.

namespace lbsq::core {

/// Driver for a continuous k-nearest-neighbor query. Owns a private
/// `QueryWorkspace`, so successive ticks recycle all query scratch.
class ContinuousKnn {
 public:
  /// Continuous query bound to `engine`; k, approximation policy, and the
  /// Lemma 3.2 density all come from the engine's options. `engine` must
  /// outlive this object.
  explicit ContinuousKnn(const QueryEngine& engine);

  /// Result of one position update.
  struct Update {
    /// The current k nearest neighbors (exact unless served approximately
    /// by peers, same contract as SbnnOutcome).
    std::vector<spatial::PoiDistance> neighbors;
    /// True when the host's own cache fully verified the answer — a
    /// zero-communication tick.
    bool from_own_cache = false;
    /// How the fallback resolved (meaningful when !from_own_cache).
    ResolvedBy resolved_by = ResolvedBy::kPeersVerified;
    /// Broadcast cost of this update (zero for cache/peer ticks).
    broadcast::AccessStats stats;
  };

  /// Advances the query to `pos` at broadcast slot `now`. `cache` is the
  /// host's own query cache (consulted first, refreshed on fallback);
  /// `peers` is whatever the radio currently reaches.
  Update Tick(geom::Point pos, PeerCache* cache,
              const std::vector<PeerData>& peers, int64_t now);

  /// Updates served entirely from the host's own cache so far.
  int64_t own_cache_hits() const { return own_cache_hits_; }
  /// Total updates.
  int64_t ticks() const { return ticks_; }

 private:
  const QueryEngine& engine_;
  QueryWorkspace workspace_;
  QueryOutcome outcome_;
  QueryRequest request_;
  NnvResult self_check_;
  std::vector<spatial::Poi> nnv_pool_;
  std::vector<PeerData> own_;
  /// Backing storage for request_.peers (the request holds a non-owning
  /// span): radio peers followed by the host's own cache snapshot.
  std::vector<PeerData> peer_buffer_;
  int64_t own_cache_hits_ = 0;
  int64_t ticks_ = 0;
};

}  // namespace lbsq::core

#endif  // LBSQ_CORE_CONTINUOUS_KNN_H_
