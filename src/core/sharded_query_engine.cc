#include "core/sharded_query_engine.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "common/check.h"

namespace lbsq::core {

QueryWorkspace& ShardedQueryWorkspace::Shard(size_t shard) {
  if (shards_.size() <= shard) shards_.resize(shard + 1);
  if (shards_[shard] == nullptr) {
    shards_[shard] = std::make_unique<QueryWorkspace>();
  }
  return *shards_[shard];
}

ShardedQueryEngine::ShardedQueryEngine(std::vector<spatial::Poi> pois,
                                       const geom::Rect& world,
                                       const broadcast::BroadcastParams& params,
                                       const EngineOptions& options,
                                       int num_shards)
    : world_(world),
      routing_grid_(world, params.hilbert_order, params.curve),
      map_(hilbert::ShardMap(routing_grid_.num_cells())),
      shard_options_(options) {
  LBSQ_CHECK(!pois.empty());
  LBSQ_CHECK(num_shards >= 1);

  std::vector<geom::Point> positions;
  positions.reserve(pois.size());
  for (const spatial::Poi& p : pois) positions.push_back(p.pos);
  map_ = hilbert::PartitionByOccupancy(routing_grid_, positions, num_shards);

  // Split in input order: shard s's list is the input list filtered to s,
  // so the 1-shard split IS the input list and every shard's broadcast
  // schedule is reproducible from the POI set alone.
  const size_t n_shards = static_cast<size_t>(map_.num_shards());
  std::vector<std::vector<spatial::Poi>> shard_pois(n_shards);
  for (const spatial::Poi& p : pois) {
    const size_t s = static_cast<size_t>(
        map_.ShardOfIndex(routing_grid_.IndexOf(p.pos)));
    shard_pois[s].push_back(p);
  }

  systems_.resize(n_shards);
  for (size_t s = 0; s < n_shards; ++s) {
    if (shard_pois[s].empty()) continue;
    systems_[s] = std::make_shared<broadcast::BroadcastSystem>(
        std::move(shard_pois[s]), world, params);
  }
  Init();
}

ShardedQueryEngine::ShardedQueryEngine(
    const geom::Rect& world, const broadcast::BroadcastParams& params,
    const EngineOptions& options, hilbert::ShardMap map,
    std::vector<std::shared_ptr<const broadcast::BroadcastSystem>> systems)
    : world_(world),
      routing_grid_(world, params.hilbert_order, params.curve),
      map_(std::move(map)),
      shard_options_(options),
      systems_(std::move(systems)) {
  LBSQ_CHECK(map_.num_cells() == routing_grid_.num_cells());
  LBSQ_CHECK(systems_.size() == static_cast<size_t>(map_.num_shards()));
  Init();
}

void ShardedQueryEngine::Init() {
  shard_options_.Validate();
  LBSQ_CHECK(world_.area() > 0.0);
  // Fault injection models one lossy channel; a multi-channel fault model
  // is a different beast. Reject loudly instead of mis-modeling.
  LBSQ_CHECK(map_.num_shards() == 1 || !shard_options_.fault.enabled());

  const size_t n_shards = systems_.size();
  bounds_.assign(n_shards, geom::Rect{});
  poi_counts_.assign(n_shards, 0);
  total_pois_ = 0;
  for (size_t s = 0; s < n_shards; ++s) {
    if (systems_[s] == nullptr) continue;
    const std::vector<spatial::Poi>& pois = systems_[s]->pois();
    LBSQ_CHECK(!pois.empty());
    poi_counts_[s] = pois.size();
    total_pois_ += pois.size();
    for (const spatial::Poi& p : pois) bounds_[s].Expand(p.pos);
  }
  LBSQ_CHECK(total_pois_ > 0);

  // The Lemma 3.2 correctness model must see the *global* density on every
  // shard, or peer-resolution decisions would depend on the shard layout.
  if (shard_options_.poi_density_override < 0.0) {
    shard_options_.poi_density_override =
        static_cast<double>(total_pois_) / world_.area();
  }

  engines_.clear();
  engines_.resize(n_shards);
  first_nonempty_ = -1;
  for (size_t s = 0; s < n_shards; ++s) {
    if (systems_[s] == nullptr) continue;
    if (first_nonempty_ < 0) first_nonempty_ = static_cast<int>(s);
    engines_[s] =
        std::make_unique<QueryEngine>(*systems_[s], world_, shard_options_);
  }
  LBSQ_CHECK(first_nonempty_ >= 0);
}

int ShardedQueryEngine::HomeShard(geom::Point q) const {
  const int s = map_.ShardOfIndex(routing_grid_.IndexOf(q));
  return systems_[static_cast<size_t>(s)] != nullptr ? s : first_nonempty_;
}

void ShardedQueryEngine::Execute(const QueryRequest& request,
                                 ShardedQueryWorkspace& workspace,
                                 QueryOutcome* outcome) const {
  LBSQ_CHECK(outcome != nullptr);
  request.Validate();
  if (num_shards() == 1) {
    // Pure delegation: byte-identical to the unsharded engine.
    engines_[0]->Execute(request, workspace.Shard(0), outcome);
    return;
  }
  if (request.kind == QueryKind::kKnn) {
    ExecuteKnn(request, workspace, outcome);
  } else {
    ExecuteWindow(request, workspace, outcome);
  }
}

QueryOutcome ShardedQueryEngine::Execute(const QueryRequest& request) const {
  ShardedQueryWorkspace workspace;
  QueryOutcome outcome;
  Execute(request, workspace, &outcome);
  return outcome;
}

std::span<const QueryOutcome> ShardedQueryEngine::ExecuteBatch(
    std::span<const QueryRequest> requests,
    ShardedQueryWorkspace& workspace) const {
  // Validate the whole batch up front: a malformed request mid-batch must
  // fail before any arena slot is written, leaving the outcome arena (and
  // the spans previous batches handed out) in a defined state.
  for (const QueryRequest& request : requests) request.Validate();
  std::vector<QueryOutcome>& arena = workspace.arena_;
  if (arena.size() < requests.size()) arena.resize(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    Execute(requests[i], workspace, &arena[i]);
  }
  return std::span<const QueryOutcome>(arena.data(), requests.size());
}

void ShardedQueryEngine::ExecuteKnn(const QueryRequest& request,
                                    ShardedQueryWorkspace& ws,
                                    QueryOutcome* outcome) const {
  const int home = HomeShard(request.position);
  const QueryEngine& home_engine = *engines_[static_cast<size_t>(home)];
  home_engine.Execute(request, ws.Shard(static_cast<size_t>(home)), outcome);
  // The peer stage is a pure function of (q, k, peers, global density) —
  // identical at every shard count — so a peer-resolved home outcome is
  // the final answer.
  if (outcome->knn->resolved_by != ResolvedBy::kBroadcast) return;

  const int k = request.k > 0 ? request.k : shard_options_.sbnn.k;
  const std::vector<spatial::PoiDistance>& home_neighbors =
      outcome->knn->neighbors;
  // The home answer is exact over home's POIs plus the peer candidates, so
  // its k-th distance upper-bounds the global k-th distance: shards whose
  // POIs all lie strictly beyond it cannot contribute.
  const double radius =
      home_neighbors.size() >= static_cast<size_t>(k)
          ? home_neighbors.back().distance
          : std::numeric_limits<double>::infinity();

  ws.merged_neighbors_.assign(home_neighbors.begin(), home_neighbors.end());
  broadcast::AccessStats stats = outcome->knn->stats;
  int64_t skipped = outcome->knn->buckets_skipped;
  // Under partial epoch rebuilds (dynamic::ShardedWorld) clean shards keep
  // the system of their last rebuild, so the shards contributing to this
  // answer can carry divergent epoch stamps. The merged knowledge is only
  // as fresh as the *oldest* contributing channel: stamping anything newer
  // would let cross-epoch revalidation skip update batches that separate a
  // stale contributor from the pinned world epoch.
  uint64_t epoch = systems_[static_cast<size_t>(home)]->epoch();

  QueryRequest partial = request;
  partial.peers = {};        // peer knowledge was consumed by the home run
  partial.trace = nullptr;   // the trace narrates the home execution only
  for (int s = 0; s < num_shards(); ++s) {
    const size_t si = static_cast<size_t>(s);
    if (s == home || engines_[si] == nullptr) continue;
    if (bounds_[si].MinDistance(request.position) > radius) continue;
    engines_[si]->Execute(partial, ws.Shard(si), &ws.partial_knn_);
    epoch = std::min(epoch, systems_[si]->epoch());
    const SbnnOutcome& part = *ws.partial_knn_.knn;
    ws.merged_neighbors_.insert(ws.merged_neighbors_.end(),
                                part.neighbors.begin(), part.neighbors.end());
    stats.access_latency =
        std::max(stats.access_latency, part.stats.access_latency);
    stats.tuning_time += part.stats.tuning_time;
    stats.buckets_read += part.stats.buckets_read;
    skipped += part.buckets_skipped;
  }

  // K-way merge at the seams: (distance, id) order with the kernel tie
  // rules; a POI appearing both as a home peer candidate and in its owner
  // shard's answer collapses (equal distance and id sort adjacently).
  std::sort(ws.merged_neighbors_.begin(), ws.merged_neighbors_.end());
  ws.merged_neighbors_.erase(
      std::unique(ws.merged_neighbors_.begin(), ws.merged_neighbors_.end(),
                  [](const spatial::PoiDistance& a,
                     const spatial::PoiDistance& b) {
                    return a.poi.id == b.poi.id;
                  }),
      ws.merged_neighbors_.end());
  const size_t take =
      std::min(ws.merged_neighbors_.size(), static_cast<size_t>(k));

  SbnnOutcome& merged = *outcome->knn;
  merged.neighbors.assign(ws.merged_neighbors_.begin(),
                          ws.merged_neighbors_.begin() +
                              static_cast<ptrdiff_t>(take));
  merged.stats = stats;
  merged.buckets_skipped = skipped;
  merged.buckets.clear();
  merged.failed_buckets.clear();

  // Rebuild the cacheable as a pure function of the merged answer, so the
  // querier's cache (and everything downstream of it) cannot observe the
  // shard layout: the axis-aligned square inscribed in the k-th neighbor's
  // disc, shrunk a hair below so boundary ties stay outside. Every POI in
  // that square is strictly closer than the k-th distance, hence in the
  // exact merged answer — the completeness invariant holds.
  merged.cacheable.Clear();
  if (take == static_cast<size_t>(k) && merged.neighbors.back().distance > 0.0) {
    const double half = merged.neighbors.back().distance / std::sqrt(2.0) *
                        (1.0 - 1e-9);
    merged.cacheable.region =
        geom::Rect::CenteredSquare(request.position, half);
    for (const spatial::PoiDistance& n : merged.neighbors) {
      if (merged.cacheable.region.Contains(n.poi.pos)) {
        merged.cacheable.pois.push_back(n.poi);
      }
    }
  }
  merged.cacheable.epoch = epoch;
}

void ShardedQueryEngine::ExecuteWindow(const QueryRequest& request,
                                       ShardedQueryWorkspace& ws,
                                       QueryOutcome* outcome) const {
  // Route through the curve: the shards owning any cell the window covers.
  routing_grid_.CoverRect(request.window, &ws.cover_scratch_, &ws.cover_);
  map_.ShardsTouching(ws.cover_, &ws.touched_);

  int lead = -1;
  for (const int s : ws.touched_) {
    if (engines_[static_cast<size_t>(s)] != nullptr) {
      lead = s;
      break;
    }
  }
  // Window over empty shards only: any shard evaluates the peer stage and
  // retrieves nothing of its own.
  if (lead < 0) lead = first_nonempty_;

  engines_[static_cast<size_t>(lead)]->Execute(
      request, ws.Shard(static_cast<size_t>(lead)), outcome);
  // w inside the MVR is a pure peer predicate — final at any shard count.
  if (outcome->window->resolved_by_peers) return;

  ws.merged_pois_.assign(outcome->window->pois.begin(),
                         outcome->window->pois.end());
  broadcast::AccessStats stats = outcome->window->stats;
  // Same min-epoch rule as ExecuteKnn: the merged window knowledge is only
  // as fresh as the oldest contributing channel.
  uint64_t epoch = systems_[static_cast<size_t>(lead)]->epoch();

  QueryRequest partial = request;
  partial.trace = nullptr;  // the trace narrates the lead execution only
  for (const int s : ws.touched_) {
    const size_t si = static_cast<size_t>(s);
    if (s == lead || engines_[si] == nullptr) continue;
    if (!bounds_[si].Intersects(request.window)) continue;
    // Peers ride along: each shard applies the MVR window reduction to its
    // own channel, so sharing shrinks every shard's retrieval.
    engines_[si]->Execute(partial, ws.Shard(si), &ws.partial_window_);
    epoch = std::min(epoch, systems_[si]->epoch());
    const SbwqOutcome& part = *ws.partial_window_.window;
    ws.merged_pois_.insert(ws.merged_pois_.end(), part.pois.begin(),
                           part.pois.end());
    stats.access_latency =
        std::max(stats.access_latency, part.stats.access_latency);
    stats.tuning_time += part.stats.tuning_time;
    stats.buckets_read += part.stats.buckets_read;
  }

  // Union at the seams, deduplicated by id (peer-known POIs surface in
  // every shard's partial answer).
  std::sort(ws.merged_pois_.begin(), ws.merged_pois_.end(),
            [](const spatial::Poi& a, const spatial::Poi& b) {
              return a.id < b.id;
            });
  ws.merged_pois_.erase(
      std::unique(ws.merged_pois_.begin(), ws.merged_pois_.end(),
                  [](const spatial::Poi& a, const spatial::Poi& b) {
                    return a.id == b.id;
                  }),
      ws.merged_pois_.end());

  SbwqOutcome& merged = *outcome->window;
  merged.pois.assign(ws.merged_pois_.begin(), ws.merged_pois_.end());
  merged.stats = stats;
  merged.buckets.clear();
  merged.failed_buckets.clear();
  // The MVR, residual windows, and residual fraction are functions of
  // (window, peers) alone — the lead's values stand for the whole query.

  // Complete knowledge of the whole window: the cacheable is the window
  // plus its exact content — a pure function of the merged answer.
  merged.cacheable.Clear();
  merged.cacheable.region = request.window;
  merged.cacheable.pois.assign(ws.merged_pois_.begin(), ws.merged_pois_.end());
  merged.cacheable.epoch = epoch;
}

}  // namespace lbsq::core
