#include "core/result_heap.h"

#include "common/check.h"

namespace lbsq::core {

ResultHeap::ResultHeap(int k) : k_(k) { LBSQ_CHECK(k >= 1); }

void ResultHeap::Reset(int k) {
  LBSQ_CHECK(k >= 1);
  k_ = k;
  entries_.clear();
}

int ResultHeap::verified_count() const {
  int count = 0;
  for (const HeapEntry& e : entries_) {
    if (e.verified) ++count;
  }
  return count;
}

bool ResultHeap::Push(const HeapEntry& entry) {
  if (full()) return false;
  if (!entries_.empty()) {
    LBSQ_CHECK(entry.distance >= entries_.back().distance);
    // Verification is monotone in distance: once an unverified entry
    // appears, no later entry can be verified.
    LBSQ_CHECK(!(entry.verified && !entries_.back().verified));
  }
  entries_.push_back(entry);
  return true;
}

HeapState ResultHeap::State() const {
  const int verified = verified_count();
  const int unverified = unverified_count();
  if (entries_.empty()) return HeapState::kEmpty;
  if (full()) {
    if (unverified == 0) return HeapState::kFulfilled;
    return verified > 0 ? HeapState::kFullMixed : HeapState::kFullUnverified;
  }
  if (verified > 0 && unverified > 0) return HeapState::kPartialMixed;
  if (verified > 0) return HeapState::kPartialVerified;
  return HeapState::kPartialUnverified;
}

std::optional<double> ResultHeap::UpperBound() const {
  if (!full()) return std::nullopt;
  return entries_.back().distance;
}

std::optional<double> ResultHeap::LowerBound() const {
  const int verified = verified_count();
  if (verified == 0) return std::nullopt;
  return entries_[static_cast<size_t>(verified - 1)].distance;
}

}  // namespace lbsq::core
