#ifndef LBSQ_CORE_QUERY_ENGINE_H_
#define LBSQ_CORE_QUERY_ENGINE_H_

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "broadcast/system.h"
#include "common/observability.h"
#include "core/query_result.h"
#include "core/sbnn.h"
#include "core/sbwq.h"
#include "fault/fault_model.h"
#include "geom/point.h"
#include "geom/rect.h"

/// \file
/// The unified query entry point. `QueryEngine` is the single way to run
/// SBNN / SBWQ (the former free functions are internal now): option
/// plumbing, peer-data handling, Lemma 3.2 density derivation, fault
/// plumbing, and trace attachment live in one place instead of being
/// repeated by every driver (the simulators, the benches, the examples).
/// The engine is immutable after construction and shares no mutable state
/// across calls — `Execute` is safe to invoke concurrently from the
/// parallel simulation engine's worker threads, each with its own
/// `QueryWorkspace`.
///
/// Two execution modes, bit-identical in output:
///  - `Execute(request)` — convenience; allocates transient buffers.
///  - `Execute(request, workspace, outcome)` / `ExecuteBatch(requests,
///    workspace)` — the steady-state path: all scratch comes from the
///    caller's `QueryWorkspace`, outcomes recycle their storage, and the
///    workspace's broadcast-cycle memo shares cover/index work between
///    co-located queries. Zero heap allocations per query once capacities
///    are warm (fault-free path; bench_batch_throughput verifies).

namespace lbsq::core {

class QueryWorkspace;

/// Which query algorithm a request runs.
enum class QueryKind { kKnn, kWindow };

/// One query, self-contained: parameters, the peer snapshot to share from,
/// and the (optional) trace recorder that receives the per-stage breakdown.
///
/// Lifetime rules: `peers` is a non-owning view. The PeerData it refers to
/// must stay alive and unmodified from the moment the request is built
/// until the Execute / ExecuteBatch call that consumes it returns — the
/// engine reads the span during the call and never retains it afterwards.
/// For ExecuteBatch this means every request's backing peer storage must
/// outlive the whole batch call; appending to a vector whose elements back
/// earlier requests' spans invalidates them, so batch builders must
/// finalize the backing storage before binding spans (or use a container
/// with stable element addresses).
struct QueryRequest {
  QueryKind kind = QueryKind::kKnn;
  /// kNN: the query point and the number of neighbors (0 = the engine's
  /// configured default k).
  geom::Point position;
  int k = 0;
  /// Window queries: the query window.
  geom::Rect window;
  /// The broadcast slot at which the query is issued.
  int64_t slot = 0;
  /// Shared data gathered from peers in transmission range (non-owning —
  /// see the lifetime rules above).
  std::span<const PeerData> peers;
  /// Receives span/counter events for this query; null disables tracing.
  obs::TraceRecorder* trace = nullptr;
  /// Fault-injection stream id for this query (typically the global query
  /// id): with faults enabled, the channel fault schedule is a pure function
  /// of (FaultConfig, this id) — independent of threads and other queries.
  /// Ignored when the engine's FaultConfig is disabled.
  uint64_t fault_stream = 0;

  /// Kind-safety: aborts (LBSQ_CHECK) when the fields of the *other* query
  /// kind are set — a window on a kKnn request, or k / a position-dependent
  /// field on a kWindow request — so a malformed request fails loudly
  /// instead of having half its parameters silently ignored. Every
  /// Execute / ExecuteBatch call validates its request(s).
  void Validate() const;
};

/// The result of one Execute call: exactly one of the two outcome kinds is
/// populated; the accessors below expose the fields common to both.
struct QueryOutcome {
  QueryKind kind = QueryKind::kKnn;
  std::optional<SbnnOutcome> knn;
  std::optional<SbwqOutcome> window;
  /// Peer regions the defensive screen rejected before the query ran (0
  /// unless screening is enabled).
  int64_t regions_rejected = 0;

  /// True when peers alone answered the query (verified or approximate kNN,
  /// or a fully covered window) — zero broadcast access.
  bool ResolvedByPeers() const;
  /// The fields shared by both query kinds (stats, buckets, cacheable
  /// region, degradation bookkeeping) — one branch here, none for callers.
  QueryResultCommon& Common();
  const QueryResultCommon& Common() const;
  /// Broadcast cost (all zero when resolved by peers).
  const broadcast::AccessStats& Stats() const { return Common().stats; }
  /// The verified knowledge the query produced, ready for cache insertion.
  VerifiedRegion& Cacheable() { return Common().cacheable; }
  const VerifiedRegion& Cacheable() const { return Common().cacheable; }
  /// True when a faulty channel left the answer best-effort (see the
  /// `degraded` field of QueryResultCommon).
  bool Degraded() const { return Common().degraded; }
};

/// The one validated option set shared by every engine — the single
/// `QueryEngine` and the multi-shard `ShardedQueryEngine` alike. Hoisted
/// out of `QueryEngine` so a sharded deployment configures exactly one
/// struct instead of N divergent per-shard copies: the POI density (the
/// Lemma 3.2 correctness model) and the fault policy are *global* facts
/// about the deployment, not per-channel ones.
struct EngineOptions {
  SbnnOptions sbnn;
  SbwqOptions sbwq;
  /// Fault injection and resilience policy. Disabled by default; when
  /// disabled the engine takes the exact pre-fault code path.
  fault::FaultConfig fault;
  /// Overrides the Lemma 3.2 POI density the engine derives from
  /// system/world (negative = derive). Tests and analysis tools use this
  /// to parameterize the correctness model independently of the actual
  /// POI count. A sharded engine pins the *global* density (all POIs over
  /// the whole world) here for every shard, so peer-resolution decisions
  /// are identical at any shard count.
  double poi_density_override = -1.0;

  /// Validates all nested option sets.
  void Validate() const {
    sbnn.Validate();
    sbwq.Validate();
    fault.Validate();
  }
};

/// Facade over the SBNN / SBWQ implementations bound to one broadcast
/// system.
class QueryEngine {
 public:
  /// Binds the engine to `system` broadcasting over `world`. The Lemma 3.2
  /// POI density is derived here, once. Validates `options` (aborts on
  /// out-of-range values).
  QueryEngine(const broadcast::BroadcastSystem& system,
              const geom::Rect& world, const EngineOptions& options);

  /// Executes one query. Thread-safe: reads only immutable engine state and
  /// the request. Convenience form — uses a throwaway workspace.
  QueryOutcome Execute(const QueryRequest& request) const;

  /// Allocation-free form: all scratch comes from `workspace` (one per
  /// thread), `*outcome` is reset in place and refilled (its buffers are
  /// recycled). Bit-identical to the convenience form for any prior
  /// workspace/outcome state.
  void Execute(const QueryRequest& request, QueryWorkspace& workspace,
               QueryOutcome* outcome) const;

  /// Executes `requests` in order through `workspace`, reusing its
  /// broadcast-cycle memo across the batch (co-located queries share cover
  /// and index lookups). Returns a view into the workspace's outcome arena,
  /// valid until the next ExecuteBatch on the same workspace; outcome i
  /// corresponds to request i and is bit-identical to
  /// `Execute(requests[i])`.
  std::span<const QueryOutcome> ExecuteBatch(
      std::span<const QueryRequest> requests,
      QueryWorkspace& workspace) const;

  const broadcast::BroadcastSystem& system() const { return system_; }
  const EngineOptions& options() const { return options_; }
  const geom::Rect& world() const { return world_; }
  /// Server POIs per square mile (parameterizes Lemma 3.2).
  double poi_density() const { return poi_density_; }

 private:
  const broadcast::BroadcastSystem& system_;
  geom::Rect world_;
  EngineOptions options_;
  double poi_density_;
};

}  // namespace lbsq::core

#endif  // LBSQ_CORE_QUERY_ENGINE_H_
