#include "core/sbnn.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "fault/faulty_channel.h"
#include "geom/circle.h"
#include "onair/onair_knn.h"

namespace lbsq::core {

namespace {

// Converts heap entries into the result representation.
std::vector<spatial::PoiDistance> HeapToNeighbors(const ResultHeap& heap) {
  std::vector<spatial::PoiDistance> out;
  out.reserve(heap.entries().size());
  for (const HeapEntry& e : heap.entries()) {
    out.push_back(spatial::PoiDistance{e.poi, e.distance});
  }
  return out;
}

// True when every unverified entry clears the correctness threshold.
bool ApproximateAcceptable(const ResultHeap& heap, double min_correctness) {
  for (const HeapEntry& e : heap.entries()) {
    if (!e.verified && e.correctness < min_correctness) return false;
  }
  return true;
}

// The square inscribed in the disc of the last verified entry: every server
// POI inside it is among the verified prefix, so the pair (square, verified
// POIs inside it) satisfies the cache completeness invariant.
VerifiedRegion CacheableFromVerifiedPrefix(geom::Point q,
                                           const ResultHeap& heap) {
  VerifiedRegion vr;
  const auto lower = heap.LowerBound();
  if (!lower.has_value() || *lower <= 0.0) return vr;
  // Shrink a hair below the inscribed square so distance ties with POIs that
  // did not fit in the heap (and square-corner contacts) stay outside.
  vr.region = geom::Rect::CenteredSquare(
      q, *lower / std::sqrt(2.0) * (1.0 - 1e-9));
  for (const HeapEntry& e : heap.entries()) {
    if (e.verified && vr.region.Contains(e.poi.pos)) vr.pois.push_back(e.poi);
  }
  return vr;
}

}  // namespace

void SbnnOptions::Validate() const {
  LBSQ_CHECK(k >= 1);
  LBSQ_CHECK(min_correctness >= 0.0 && min_correctness <= 1.0);
  LBSQ_CHECK(prefetch_radius_factor >= 1.0);
}

SbnnOutcome RunSbnn(geom::Point q, const SbnnOptions& options,
                    const std::vector<PeerData>& peers, double poi_density,
                    const broadcast::BroadcastSystem& system, int64_t now,
                    obs::TraceRecorder* trace, fault::ChannelSession* faults) {
  options.Validate();
  SbnnOutcome outcome(options.k);
  outcome.nnv = NearestNeighborVerify(q, options.k, peers, poi_density);
  const ResultHeap& heap = outcome.nnv.heap;
  if (trace != nullptr) {
    // NNV is pure computation: the span is instantaneous in broadcast time;
    // its cost shows in the counters.
    trace->Span("sbnn.nnv", now, now);
    trace->Counter("sbnn.candidates",
                   static_cast<double>(outcome.nnv.candidate_count));
    trace->Counter("sbnn.verified",
                   static_cast<double>(heap.verified_count()));
  }

  if (heap.fully_verified()) {
    outcome.resolved_by = ResolvedBy::kPeersVerified;
    outcome.neighbors = HeapToNeighbors(heap);
    outcome.cacheable = CacheableFromVerifiedPrefix(q, heap);
    if (trace != nullptr) trace->Counter("sbnn.peers_verified", 1.0);
    return outcome;
  }
  if (options.accept_approximate && heap.full() &&
      ApproximateAcceptable(heap, options.min_correctness)) {
    outcome.resolved_by = ResolvedBy::kPeersApproximate;
    outcome.neighbors = HeapToNeighbors(heap);
    outcome.cacheable = CacheableFromVerifiedPrefix(q, heap);
    if (trace != nullptr) trace->Counter("sbnn.approx_accept", 1.0);
    return outcome;
  }

  // Broadcast fallback with §3.3.3 data filtering.
  outcome.resolved_by = ResolvedBy::kBroadcast;

  // Search upper bound. The paper's client uses the k-th heap entry when H
  // is full (states 1, 2) and the index-derived bound otherwise; with
  // tighten_with_index_bound both bounds apply (their minimum is sound).
  const auto upper = heap.UpperBound();
  double radius;
  if (options.use_filtering && upper.has_value() &&
      !options.tighten_with_index_bound) {
    radius = *upper;
  } else {
    radius = system.index().KthDistanceUpperBound(q, options.k);
    if (!std::isfinite(radius)) {
      radius = system.grid().world().MaxDistance(q);
    }
    if (options.use_filtering && upper.has_value()) {
      radius = std::min(radius, *upper);
    }
  }
  radius *= options.prefetch_radius_factor;
  std::vector<int64_t> needed =
      onair::BucketsForCircle(system, geom::Circle{q, radius});

  // Search lower bound: packets fully covered by the circle C_i of radius
  // d_v (the last verified entry) hold only objects the peers already
  // supplied (states 1, 3, 4).
  const auto lower = heap.LowerBound();
  if (options.use_filtering && lower.has_value()) {
    const geom::Circle known{q, *lower};
    std::vector<int64_t> kept;
    for (int64_t id : needed) {
      const broadcast::DataBucket& bucket =
          system.buckets()[static_cast<size_t>(id)];
      if (known.ContainsRect(bucket.mbr)) {
        ++outcome.buckets_skipped;
      } else {
        kept.push_back(id);
      }
    }
    needed.swap(kept);
  }

  outcome.buckets = needed;
  broadcast::IndexReadMode index_mode =
      broadcast::IndexReadMode::FlatDirectory();
  if (system.tree_index() != nullptr) {
    index_mode = broadcast::IndexReadMode::TreePaths(system.IndexReadBuckets(
        system.grid().CoverRect(geom::Circle{q, radius}.Mbr())));
  }
  std::vector<int64_t> retrieved = needed;
  if (faults != nullptr && faults->channel_enabled()) {
    fault::FaultyRetrievalResult r =
        faults->Retrieve(system.schedule(), now, needed, index_mode, trace);
    outcome.stats = r.stats;
    outcome.fault_losses = r.losses;
    outcome.fault_corruptions = r.corruptions;
    outcome.fault_deadline_hit = r.deadline_hit;
    if (!r.complete()) {
      outcome.degraded = true;
      outcome.failed_buckets = std::move(r.failed);
    }
    retrieved = std::move(r.received);
  } else {
    outcome.stats = broadcast::RetrieveBuckets(system.schedule(), now, needed,
                                               index_mode, trace);
  }
  if (trace != nullptr) {
    trace->Span("sbnn.fallback", now, now + outcome.stats.access_latency);
    trace->Counter("sbnn.buckets_skipped",
                   static_cast<double>(outcome.buckets_skipped));
  }

  // Assemble the exact answer from the downloaded buckets plus everything
  // the peers supplied (which covers any packets the filter skipped).
  std::vector<spatial::Poi> known_pois = system.CollectPois(retrieved);
  for (const spatial::PoiDistance& c : outcome.nnv.candidates) {
    known_pois.push_back(c.poi);
  }
  std::sort(known_pois.begin(), known_pois.end(),
            [](const spatial::Poi& a, const spatial::Poi& b) {
              return a.id < b.id;
            });
  known_pois.erase(std::unique(known_pois.begin(), known_pois.end()),
                   known_pois.end());
  outcome.neighbors = spatial::BruteForceKnn(known_pois, q, options.k);

  // Every cell intersecting the search MBR is covered by a bucket that was
  // either downloaded or skipped-as-peer-known, so the client now has
  // complete knowledge of the MBR. A degraded retrieval breaks that chain:
  // the cacheable region stays empty — never cache unverified knowledge.
  if (!outcome.degraded) {
    outcome.cacheable.region = geom::Circle{q, radius}.Mbr();
    for (const spatial::Poi& poi : known_pois) {
      if (outcome.cacheable.region.Contains(poi.pos)) {
        outcome.cacheable.pois.push_back(poi);
      }
    }
  }
  return outcome;
}

}  // namespace lbsq::core
