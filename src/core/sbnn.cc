#include "core/sbnn.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "core/query_internal.h"
#include "fault/faulty_channel.h"
#include "geom/circle.h"
#include "kernels/kernels.h"
#include "onair/onair_knn.h"

namespace lbsq::core {

void SbnnOptions::Validate() const {
  LBSQ_CHECK(k >= 1);
  LBSQ_CHECK(min_correctness >= 0.0 && min_correctness <= 1.0);
  LBSQ_CHECK(prefetch_radius_factor >= 1.0);
}

namespace internal {

namespace {

// Converts heap entries into the result representation.
void HeapToNeighbors(const ResultHeap& heap,
                     std::vector<spatial::PoiDistance>* out) {
  out->clear();
  out->reserve(heap.entries().size());
  for (const HeapEntry& e : heap.entries()) {
    out->push_back(spatial::PoiDistance{e.poi, e.distance});
  }
}

// True when every unverified entry clears the correctness threshold.
bool ApproximateAcceptable(const ResultHeap& heap, double min_correctness) {
  for (const HeapEntry& e : heap.entries()) {
    if (!e.verified && e.correctness < min_correctness) return false;
  }
  return true;
}

// The square inscribed in the disc of the last verified entry: every server
// POI inside it is among the verified prefix, so the pair (square, verified
// POIs inside it) satisfies the cache completeness invariant.
void CacheableFromVerifiedPrefix(geom::Point q, const ResultHeap& heap,
                                 VerifiedRegion* vr) {
  vr->Clear();
  const auto lower = heap.LowerBound();
  if (!lower.has_value() || *lower <= 0.0) return;
  // Shrink a hair below the inscribed square so distance ties with POIs that
  // did not fit in the heap (and square-corner contacts) stay outside.
  vr->region = geom::Rect::CenteredSquare(
      q, *lower / std::sqrt(2.0) * (1.0 - 1e-9));
  vr->pois.reserve(heap.entries().size());
  for (const HeapEntry& e : heap.entries()) {
    if (e.verified && vr->region.Contains(e.poi.pos)) vr->pois.push_back(e.poi);
  }
}

}  // namespace

void RunSbnn(geom::Point q, const SbnnOptions& options,
             std::span<const PeerData> peers, double poi_density,
             const broadcast::BroadcastSystem& system, int64_t now,
             obs::TraceRecorder* trace, fault::ChannelSession* faults,
             QueryWorkspace& ws, SbnnOutcome* out) {
  options.Validate();
  SbnnOutcome& outcome = *out;
  outcome.Reset(options.k);
  NearestNeighborVerify(q, options.k, peers, poi_density, &ws.nnv_pool,
                        &outcome.nnv, &ws.region_scratch, &ws.slab);
  const ResultHeap& heap = outcome.nnv.heap;
  if (trace != nullptr) {
    // NNV is pure computation: the span is instantaneous in broadcast time;
    // its cost shows in the counters.
    trace->Span("sbnn.nnv", now, now);
    trace->Counter("sbnn.candidates",
                   static_cast<double>(outcome.nnv.candidate_count));
    trace->Counter("sbnn.verified",
                   static_cast<double>(heap.verified_count()));
  }

  if (heap.fully_verified()) {
    outcome.resolved_by = ResolvedBy::kPeersVerified;
    HeapToNeighbors(heap, &outcome.neighbors);
    CacheableFromVerifiedPrefix(q, heap, &outcome.cacheable);
    if (trace != nullptr) trace->Counter("sbnn.peers_verified", 1.0);
    return;
  }
  if (options.accept_approximate && heap.full() &&
      ApproximateAcceptable(heap, options.min_correctness)) {
    outcome.resolved_by = ResolvedBy::kPeersApproximate;
    HeapToNeighbors(heap, &outcome.neighbors);
    CacheableFromVerifiedPrefix(q, heap, &outcome.cacheable);
    if (trace != nullptr) trace->Counter("sbnn.approx_accept", 1.0);
    return;
  }

  // Broadcast fallback with §3.3.3 data filtering.
  outcome.resolved_by = ResolvedBy::kBroadcast;

  // Search upper bound. The paper's client uses the k-th heap entry when H
  // is full (states 1, 2) and the index-derived bound otherwise; with
  // tighten_with_index_bound both bounds apply (their minimum is sound).
  const auto upper = heap.UpperBound();
  double radius;
  if (options.use_filtering && upper.has_value() &&
      !options.tighten_with_index_bound) {
    radius = *upper;
  } else {
    radius = system.index().KthDistanceUpperBound(q, options.k,
                                                  &ws.index_distances);
    if (!std::isfinite(radius)) {
      radius = system.grid().world().MaxDistance(q);
    }
    if (options.use_filtering && upper.has_value()) {
      radius = std::min(radius, *upper);
    }
  }
  radius *= options.prefetch_radius_factor;

  // Same bucket set onair::BucketsForCircle computes, but the cover and the
  // span lookup come from the cycle memo: co-located queries whose search
  // MBRs clamp to the same grid cells share the work.
  const geom::Rect search_mbr = geom::Circle{q, radius}.Mbr();
  CoverEntry& cover = ws.Cover(system, search_mbr);
  ws.needed.clear();
  if (!cover.ranges.empty()) {
    const std::vector<int64_t>& span = ws.SpanBuckets(system, &cover);
    ws.needed.assign(span.begin(), span.end());
  }

  // Search lower bound: packets fully covered by the circle C_i of radius
  // d_v (the last verified entry) hold only objects the peers already
  // supplied (states 1, 3, 4).
  const auto lower = heap.LowerBound();
  if (options.use_filtering && lower.has_value()) {
    const geom::Circle known{q, *lower};
    ws.kept.clear();
    for (int64_t id : ws.needed) {
      const broadcast::DataBucket& bucket =
          system.buckets()[static_cast<size_t>(id)];
      if (known.ContainsRect(bucket.mbr)) {
        ++outcome.buckets_skipped;
      } else {
        ws.kept.push_back(id);
      }
    }
    ws.needed.swap(ws.kept);
  }

  outcome.buckets.assign(ws.needed.begin(), ws.needed.end());
  broadcast::IndexReadMode index_mode =
      broadcast::IndexReadMode::FlatDirectory();
  if (system.tree_index() != nullptr) {
    index_mode =
        broadcast::IndexReadMode::TreePaths(ws.TreeReadBuckets(system, &cover));
  }
  const std::vector<int64_t>* retrieved = &ws.needed;
  bool complete_span = false;
  if (faults != nullptr && faults->channel_enabled()) {
    fault::FaultyRetrievalResult r =
        faults->Retrieve(system.schedule(), now, ws.needed, index_mode, trace);
    outcome.stats = r.stats;
    outcome.fault_losses = r.losses;
    outcome.fault_corruptions = r.corruptions;
    outcome.fault_deadline_hit = r.deadline_hit;
    if (!r.complete()) {
      outcome.degraded = true;
      outcome.failed_buckets = std::move(r.failed);
    }
    ws.retrieved = std::move(r.received);
    retrieved = &ws.retrieved;
  } else {
    outcome.stats = broadcast::RetrieveBuckets(system.schedule(), now,
                                               ws.needed, index_mode, trace);
    // With no filter removals the retrieved set IS the memoized span, so
    // its collected content can come from the memo too.
    complete_span = outcome.buckets_skipped == 0 && !cover.ranges.empty();
  }
  if (trace != nullptr) {
    trace->Span("sbnn.fallback", now, now + outcome.stats.access_latency);
    trace->Counter("sbnn.buckets_skipped",
                   static_cast<double>(outcome.buckets_skipped));
  }

  // Assemble the exact answer from the downloaded buckets plus everything
  // the peers supplied (which covers any packets the filter skipped).
  if (complete_span) {
    const std::vector<spatial::Poi>& memo = ws.SpanPois(system, &cover);
    ws.known_pois.assign(memo.begin(), memo.end());
  } else {
    system.CollectPois(*retrieved, &ws.collect_scratch, &ws.known_pois);
  }
  // Both CollectPois and the memoized span content are already sorted by id
  // and deduplicated, so the canonicalizing sort is only needed when peer
  // candidates were actually merged in.
  if (!outcome.nnv.candidates.empty()) {
    for (const spatial::PoiDistance& c : outcome.nnv.candidates) {
      ws.known_pois.push_back(c.poi);
    }
    std::sort(ws.known_pois.begin(), ws.known_pois.end(),
              [](const spatial::Poi& a, const spatial::Poi& b) {
                return a.id < b.id;
              });
    ws.known_pois.erase(
        std::unique(ws.known_pois.begin(), ws.known_pois.end()),
        ws.known_pois.end());
  }
  spatial::BruteForceKnn(ws.known_pois, q, options.k, &ws.slab,
                         &outcome.neighbors);

  // Every cell intersecting the search MBR is covered by a bucket that was
  // either downloaded or skipped-as-peer-known, so the client now has
  // complete knowledge of the MBR. A degraded retrieval breaks that chain:
  // the cacheable region stays empty — never cache unverified knowledge.
  if (!outcome.degraded) {
    outcome.cacheable.region = search_mbr;
    // BruteForceKnn left ws.slab.slab holding the SoA transpose of
    // known_pois; one window-mask pass sizes and selects the contained set.
    const size_t n = ws.known_pois.size();
    uint32_t* idx = ws.slab.IdxFor(n);
    const size_t contained = kernels::SelectInWindow(
        ws.slab.slab.xs(), ws.slab.slab.ys(), n, search_mbr.x1, search_mbr.y1,
        search_mbr.x2, search_mbr.y2, idx);
    outcome.cacheable.pois.reserve(contained);
    for (size_t j = 0; j < contained; ++j) {
      outcome.cacheable.pois.push_back(ws.known_pois[idx[j]]);
    }
  }
}

}  // namespace internal
}  // namespace lbsq::core
