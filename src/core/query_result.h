#ifndef LBSQ_CORE_QUERY_RESULT_H_
#define LBSQ_CORE_QUERY_RESULT_H_

#include <cstdint>
#include <vector>

#include "broadcast/client_protocol.h"
#include "core/verified_region.h"

/// \file
/// The result fields every query kind produces. SBNN and SBWQ outcomes used
/// to duplicate the tuning/latency slots, the degraded-retrieval bookkeeping,
/// and the cacheable region; `QueryResultCommon` hoists them into one base
/// both outcome structs extend, so callers (and `QueryOutcome::Common()`)
/// reach them without branching on the query kind.

namespace lbsq::core {

/// Fields shared by SbnnOutcome and SbwqOutcome.
struct QueryResultCommon {
  /// Broadcast cost (all zero for peer-resolved queries).
  broadcast::AccessStats stats;
  /// Buckets downloaded on fallback.
  std::vector<int64_t> buckets;
  /// The verified knowledge this query produced, ready for insertion into
  /// the querier's own cache (empty when the query yielded no complete
  /// coverage — in particular whenever it degraded).
  VerifiedRegion cacheable;
  /// True when a faulty channel prevented complete retrieval: the answer is
  /// best-effort (assembled from received buckets and peer data only) and
  /// `cacheable` is empty — a degraded query never claims verified
  /// knowledge it does not have.
  bool degraded = false;
  /// Buckets given up on (retry budget or deadline exhausted).
  std::vector<int64_t> failed_buckets;
  /// Channel accounting for this query (zero without fault injection).
  int64_t fault_losses = 0;
  int64_t fault_corruptions = 0;
  bool fault_deadline_hit = false;

  /// Clears every common field while keeping vector capacity — the batch
  /// execution path recycles outcome storage across queries.
  void ResetCommon() {
    stats = broadcast::AccessStats{};
    buckets.clear();
    cacheable.Clear();
    degraded = false;
    failed_buckets.clear();
    fault_losses = 0;
    fault_corruptions = 0;
    fault_deadline_hit = false;
  }
};

}  // namespace lbsq::core

#endif  // LBSQ_CORE_QUERY_RESULT_H_
