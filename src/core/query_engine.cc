#include "core/query_engine.h"

#include <utility>

#include "common/check.h"
#include "fault/faulty_channel.h"
#include "fault/peer_screen.h"

namespace lbsq::core {

bool QueryOutcome::ResolvedByPeers() const {
  if (kind == QueryKind::kKnn) {
    return knn->resolved_by != ResolvedBy::kBroadcast;
  }
  return window->resolved_by_peers;
}

const broadcast::AccessStats& QueryOutcome::Stats() const {
  return kind == QueryKind::kKnn ? knn->stats : window->stats;
}

VerifiedRegion& QueryOutcome::Cacheable() {
  return kind == QueryKind::kKnn ? knn->cacheable : window->cacheable;
}

const VerifiedRegion& QueryOutcome::Cacheable() const {
  return kind == QueryKind::kKnn ? knn->cacheable : window->cacheable;
}

bool QueryOutcome::Degraded() const {
  return kind == QueryKind::kKnn ? knn->degraded : window->degraded;
}

QueryEngine::QueryEngine(const broadcast::BroadcastSystem& system,
                         const geom::Rect& world, const Options& options)
    : system_(system), world_(world), options_(options) {
  options_.Validate();
  LBSQ_CHECK(world.area() > 0.0);
  poi_density_ = static_cast<double>(system.pois().size()) / world.area();
}

QueryOutcome QueryEngine::Execute(const QueryRequest& request) const {
  QueryOutcome outcome;
  outcome.kind = request.kind;

  // Fault plumbing. When the engine's FaultConfig is disabled this block
  // compiles down to two null/empty locals and the call below is the exact
  // pre-fault path — bit-identical results and traces.
  const fault::FaultConfig& fault = options_.fault;
  fault::ChannelSession* session = nullptr;
  std::optional<fault::ChannelSession> session_storage;
  if (fault.enabled() && fault.channel.enabled()) {
    session_storage.emplace(
        fault.channel, fault.policy,
        fault::ChannelStreamSeed(fault.seed, request.fault_stream));
    session = &*session_storage;
  }
  const std::vector<PeerData>* peers = &request.peers;
  std::vector<PeerData> screened;
  if (fault.enabled() && fault.screen_peers) {
    screened = request.peers;
    const fault::ScreenResult screen =
        fault::ScreenPeerData(world_, &screened);
    outcome.regions_rejected = screen.regions_rejected;
    if (request.trace != nullptr && screen.regions_rejected > 0) {
      request.trace->Counter("fault.regions_rejected",
                             static_cast<double>(screen.regions_rejected));
    }
    peers = &screened;
  }

  if (request.kind == QueryKind::kKnn) {
    SbnnOptions sbnn = options_.sbnn;
    if (request.k > 0) sbnn.k = request.k;
    outcome.knn = RunSbnn(request.position, sbnn, *peers, poi_density_,
                          system_, request.slot, request.trace, session);
  } else {
    outcome.window = RunSbwq(request.window, options_.sbwq, *peers, system_,
                             request.slot, request.trace, session);
  }
  return outcome;
}

}  // namespace lbsq::core
