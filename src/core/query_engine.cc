#include "core/query_engine.h"

#include "common/check.h"

namespace lbsq::core {

bool QueryOutcome::ResolvedByPeers() const {
  if (kind == QueryKind::kKnn) {
    return knn->resolved_by != ResolvedBy::kBroadcast;
  }
  return window->resolved_by_peers;
}

const broadcast::AccessStats& QueryOutcome::Stats() const {
  return kind == QueryKind::kKnn ? knn->stats : window->stats;
}

VerifiedRegion& QueryOutcome::Cacheable() {
  return kind == QueryKind::kKnn ? knn->cacheable : window->cacheable;
}

const VerifiedRegion& QueryOutcome::Cacheable() const {
  return kind == QueryKind::kKnn ? knn->cacheable : window->cacheable;
}

QueryEngine::QueryEngine(const broadcast::BroadcastSystem& system,
                         const geom::Rect& world, const Options& options)
    : system_(system), world_(world), options_(options) {
  options_.Validate();
  LBSQ_CHECK(world.area() > 0.0);
  poi_density_ = static_cast<double>(system.pois().size()) / world.area();
}

QueryOutcome QueryEngine::Execute(const QueryRequest& request) const {
  QueryOutcome outcome;
  outcome.kind = request.kind;
  if (request.kind == QueryKind::kKnn) {
    SbnnOptions sbnn = options_.sbnn;
    if (request.k > 0) sbnn.k = request.k;
    outcome.knn = RunSbnn(request.position, sbnn, request.peers, poi_density_,
                          system_, request.slot, request.trace);
  } else {
    outcome.window = RunSbwq(request.window, options_.sbwq, request.peers,
                             system_, request.slot, request.trace);
  }
  return outcome;
}

}  // namespace lbsq::core
