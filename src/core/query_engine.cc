#include "core/query_engine.h"

#include <optional>
#include <utility>

#include "common/check.h"
#include "core/query_internal.h"
#include "core/query_workspace.h"
#include "fault/faulty_channel.h"
#include "fault/peer_screen.h"

namespace lbsq::core {

void QueryRequest::Validate() const {
  if (kind == QueryKind::kKnn) {
    // A set window on a kNN request would be silently ignored — reject it.
    LBSQ_CHECK(window.empty());
  } else {
    // k (and the query position) belong to kNN; a window request carrying
    // them is malformed.
    LBSQ_CHECK(k == 0);
    LBSQ_CHECK(!window.empty());
  }
}

bool QueryOutcome::ResolvedByPeers() const {
  if (kind == QueryKind::kKnn) {
    return knn->resolved_by != ResolvedBy::kBroadcast;
  }
  return window->resolved_by_peers;
}

QueryResultCommon& QueryOutcome::Common() {
  return kind == QueryKind::kKnn ? static_cast<QueryResultCommon&>(*knn)
                                 : static_cast<QueryResultCommon&>(*window);
}

const QueryResultCommon& QueryOutcome::Common() const {
  return kind == QueryKind::kKnn
             ? static_cast<const QueryResultCommon&>(*knn)
             : static_cast<const QueryResultCommon&>(*window);
}

QueryEngine::QueryEngine(const broadcast::BroadcastSystem& system,
                         const geom::Rect& world,
                         const EngineOptions& options)
    : system_(system), world_(world), options_(options) {
  options_.Validate();
  LBSQ_CHECK(world.area() > 0.0);
  poi_density_ =
      options_.poi_density_override >= 0.0
          ? options_.poi_density_override
          : static_cast<double>(system.pois().size()) / world.area();
}

QueryOutcome QueryEngine::Execute(const QueryRequest& request) const {
  QueryWorkspace workspace;
  QueryOutcome outcome;
  Execute(request, workspace, &outcome);
  return outcome;
}

void QueryEngine::Execute(const QueryRequest& request,
                          QueryWorkspace& workspace,
                          QueryOutcome* outcome) const {
  LBSQ_CHECK(outcome != nullptr);
  request.Validate();
  // Scope the workspace memo to this system and broadcast cycle; within a
  // cycle, co-located queries share cover and index lookups.
  workspace.Prepare(system_,
                    request.slot / system_.schedule().cycle_length());
  outcome->kind = request.kind;
  outcome->regions_rejected = 0;

  // Fault plumbing. When the engine's FaultConfig is disabled this block
  // compiles down to two null/empty locals and the call below is the exact
  // pre-fault path — bit-identical results and traces.
  const fault::FaultConfig& fault = options_.fault;
  fault::ChannelSession* session = nullptr;
  std::optional<fault::ChannelSession> session_storage;
  if (fault.enabled() && fault.channel.enabled()) {
    session_storage.emplace(
        fault.channel, fault.policy,
        fault::ChannelStreamSeed(fault.seed, request.fault_stream));
    session = &*session_storage;
  }
  std::span<const PeerData> peers = request.peers;
  if (fault.enabled() && fault.screen_peers) {
    workspace.screened.assign(request.peers.begin(), request.peers.end());
    const fault::ScreenResult screen =
        fault::ScreenPeerData(world_, &workspace.screened);
    outcome->regions_rejected = screen.regions_rejected;
    if (request.trace != nullptr && screen.regions_rejected > 0) {
      request.trace->Counter("fault.regions_rejected",
                             static_cast<double>(screen.regions_rejected));
    }
    peers = workspace.screened;
  }

  if (request.kind == QueryKind::kKnn) {
    SbnnOptions sbnn = options_.sbnn;
    if (request.k > 0) sbnn.k = request.k;
    outcome->window.reset();
    if (!outcome->knn.has_value()) outcome->knn.emplace(sbnn.k);
    internal::RunSbnn(request.position, sbnn, peers, poi_density_, system_,
                      request.slot, request.trace, session, workspace,
                      &*outcome->knn);
  } else {
    outcome->knn.reset();
    if (!outcome->window.has_value()) outcome->window.emplace();
    internal::RunSbwq(request.window, options_.sbwq, peers, system_,
                      request.slot, request.trace, session, workspace,
                      &*outcome->window);
  }
  // The produced knowledge is complete with respect to this system's world
  // epoch; tag it so cross-epoch consumers can revalidate (epoch 0 — the
  // static world — leaves the default tag in place).
  outcome->Cacheable().epoch = system_.epoch();
}

std::span<const QueryOutcome> QueryEngine::ExecuteBatch(
    std::span<const QueryRequest> requests, QueryWorkspace& workspace) const {
  // Validate the whole batch up front: a malformed request mid-batch must
  // fail before any arena slot is written, leaving the outcome arena (and
  // the spans previous batches handed out) in a defined state.
  for (const QueryRequest& request : requests) request.Validate();
  std::vector<QueryOutcome>& arena = workspace.outcome_arena();
  // Grow-only: the arena keeps the largest batch's storage so later batches
  // recycle every inner buffer.
  if (arena.size() < requests.size()) arena.resize(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    Execute(requests[i], workspace, &arena[i]);
  }
  return std::span<const QueryOutcome>(arena.data(), requests.size());
}

}  // namespace lbsq::core
