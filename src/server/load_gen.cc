#include "server/load_gen.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "geom/rect.h"
#include "server/client.h"
#include "sim/metrics.h"
#include "sim/trace.h"
#include "sim/workload.h"

namespace lbsq::server {

namespace {

/// Nearest-rank percentile over a sorted sample (0 for an empty one).
double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const size_t rank = static_cast<size_t>(p * static_cast<double>(sorted.size() - 1));
  return sorted[std::min(rank, sorted.size() - 1)];
}

struct Pending {
  size_t index = 0;
  std::chrono::steady_clock::time_point sent;
  QueryCall call;
};

}  // namespace

LoadResult ReplayWorkload(const sim::SimConfig& config,
                          const LoadOptions& options) {
  LoadResult result;
  const geom::Rect world{0.0, 0.0, config.world_side_mi,
                         config.world_side_mi};
  const std::vector<sim::QueryEvent> events =
      sim::GenerateWorkload(config, world);
  std::vector<sim::QueryEvent> measured;
  measured.reserve(events.size());
  for (const sim::QueryEvent& event : events) {
    if (event.time_min >= config.warmup_min) measured.push_back(event);
  }
  const size_t total = measured.size();
  result.queries = static_cast<int64_t>(total);
  if (total == 0) {
    result.ok = true;
    result.digest = 1469598103934665603ull;  // FNV-1a offset basis
    return result;
  }

  const int connections = std::max(1, options.connections);
  const size_t pipeline = static_cast<size_t>(std::max(1, options.pipeline));
  const size_t session_quota =
      static_cast<size_t>(std::max(1, options.queries_per_session));

  // Per-event answer fold values; threads write disjoint slots.
  std::vector<std::vector<uint64_t>> folds(total);
  std::vector<double> latencies_us;
  std::mutex merge_mu;
  std::atomic<int64_t> retries{0};
  std::atomic<int64_t> sessions{0};
  std::atomic<bool> failed{false};
  std::string first_error;

  auto fail = [&](const std::string& error) {
    std::lock_guard<std::mutex> lock(merge_mu);
    if (first_error.empty()) first_error = error;
    failed.store(true, std::memory_order_release);
  };

  const auto start_time = std::chrono::steady_clock::now();

  auto run_connection = [&](int thread_index) {
    // Each connection owns a mobility model: its event subset is
    // time-ordered (a subsequence of the time-ordered workload), so the
    // per-host non-decreasing access contract holds per model.
    const std::unique_ptr<sim::MobilityModel> mobility =
        sim::MakeMobilityModel(config, world);
    std::vector<double> local_latencies;
    std::vector<size_t> mine;
    for (size_t i = static_cast<size_t>(thread_index); i < total;
         i += static_cast<size_t>(connections)) {
      mine.push_back(i);
    }

    size_t at = 0;
    while (at < mine.size() && !failed.load(std::memory_order_acquire)) {
      const size_t chunk_end = std::min(mine.size(), at + session_quota);
      Client client;
      std::string error;
      if (!client.Connect(options.port, options.min_version,
                          options.max_version, &error)) {
        fail(error);
        return;
      }
      std::unordered_map<uint64_t, Pending> pending;
      size_t next = at;
      size_t completed = 0;
      const size_t chunk_size = chunk_end - at;
      while (completed < chunk_size) {
        while (next < chunk_end && pending.size() < pipeline) {
          const size_t index = mine[next];
          const sim::QueryEvent& event = measured[index];
          QueryCall call;
          call.request_id = index;
          call.slot = static_cast<int64_t>(event.time_min *
                                           config.slots_per_second * 60.0);
          if (event.type == sim::QueryType::kKnn) {
            call.kind = core::QueryKind::kKnn;
            call.position = mobility->Position(event.host, event.time_min);
            call.k = event.k;
          } else {
            call.kind = core::QueryKind::kWindow;
            call.window = event.window;
          }
          if (!client.SendQuery(call, &error)) {
            fail(error);
            return;
          }
          pending.emplace(
              call.request_id,
              Pending{index, std::chrono::steady_clock::now(), call});
          ++next;
        }

        QueryAnswer answer;
        RetryAfter retry;
        switch (client.Receive(&answer, &retry, &error)) {
          case Client::Reply::kAnswer: {
            const auto it = pending.find(answer.request_id);
            if (it == pending.end()) {
              fail("unmatched answer request id");
              return;
            }
            // The simulator's digest vocabulary: ids (+ distance bit
            // patterns for kNN) in canonical answer order, terminated by
            // the answer size.
            std::vector<uint64_t>& fold = folds[it->second.index];
            if (answer.kind == core::QueryKind::kKnn) {
              for (size_t i = 0; i < answer.neighbor_ids.size(); ++i) {
                fold.push_back(
                    static_cast<uint64_t>(answer.neighbor_ids[i]));
                fold.push_back(
                    std::bit_cast<uint64_t>(answer.neighbor_distances[i]));
              }
              fold.push_back(answer.neighbor_ids.size());
            } else {
              for (const int64_t id : answer.poi_ids) {
                fold.push_back(static_cast<uint64_t>(id));
              }
              fold.push_back(answer.poi_ids.size());
            }
            local_latencies.push_back(
                std::chrono::duration<double, std::micro>(
                    std::chrono::steady_clock::now() - it->second.sent)
                    .count());
            pending.erase(it);
            ++completed;
            break;
          }
          case Client::Reply::kRetryAfter: {
            retries.fetch_add(1, std::memory_order_relaxed);
            const auto it = pending.find(retry.request_id);
            if (it == pending.end()) {
              fail("unmatched retry request id");
              return;
            }
            if (!options.overload && retry.delay_ms > 0) {
              std::this_thread::sleep_for(
                  std::chrono::milliseconds(retry.delay_ms));
            }
            if (!client.SendQuery(it->second.call, &error)) {
              fail(error);
              return;
            }
            break;
          }
          default:
            fail(error.empty() ? "receive failed" : error);
            return;
        }
      }
      client.Close();
      sessions.fetch_add(1, std::memory_order_relaxed);
      at = chunk_end;
    }

    std::lock_guard<std::mutex> lock(merge_mu);
    latencies_us.insert(latencies_us.end(), local_latencies.begin(),
                        local_latencies.end());
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(connections));
  for (int t = 0; t < connections; ++t) {
    threads.emplace_back(run_connection, t);
  }
  for (std::thread& thread : threads) thread.join();

  result.elapsed_s = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start_time)
                         .count();
  result.retries_received = retries.load(std::memory_order_relaxed);
  result.sessions = sessions.load(std::memory_order_relaxed);
  if (failed.load(std::memory_order_acquire)) {
    result.error = first_error;
    return result;
  }

  // Fold in event order — the digest is order-sensitive and must chain
  // exactly like the simulator's per-event accumulation.
  uint64_t digest = 1469598103934665603ull;  // FNV-1a offset basis
  for (const std::vector<uint64_t>& fold : folds) {
    for (const uint64_t value : fold) digest = sim::DigestFold(digest, value);
  }
  result.digest = digest;

  std::sort(latencies_us.begin(), latencies_us.end());
  result.p50_us = Percentile(latencies_us, 0.50);
  result.p95_us = Percentile(latencies_us, 0.95);
  result.p99_us = Percentile(latencies_us, 0.99);
  if (result.elapsed_s > 0.0) {
    result.sessions_per_sec =
        static_cast<double>(result.sessions) / result.elapsed_s;
    result.queries_per_sec =
        static_cast<double>(result.queries) / result.elapsed_s;
  }
  result.ok = true;
  return result;
}

}  // namespace lbsq::server
