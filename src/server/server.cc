#include "server/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "common/check.h"

namespace lbsq::server {

namespace {

bool SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

}  // namespace

Server::Server(const core::ShardedQueryEngine& engine, uint64_t epoch,
               const ServerOptions& options)
    : engine_(engine), options_(options) {
  LBSQ_CHECK(options_.num_workers >= 1);
  LBSQ_CHECK(options_.worker_queue_capacity >= 1);
  LBSQ_CHECK(options_.session_inflight_limit >= 1);
  session_context_.engine = &engine_;
  session_context_.epoch = epoch;
  session_context_.counters = &counters_;
}

Server::~Server() { Stop(); }

bool Server::Start(std::string* error) {
  LBSQ_CHECK(!started_);
  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    if (error != nullptr) *error = "socket() failed";
    return false;
  }
  const int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      listen(listen_fd_, 128) != 0 || !SetNonBlocking(listen_fd_)) {
    if (error != nullptr) *error = "bind/listen failed";
    close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                  &bound_len) != 0) {
    if (error != nullptr) *error = "getsockname failed";
    close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  port_ = ntohs(bound.sin_port);
  if (pipe(wake_pipe_) != 0 || !SetNonBlocking(wake_pipe_[0]) ||
      !SetNonBlocking(wake_pipe_[1])) {
    if (error != nullptr) *error = "pipe failed";
    close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }

  stopping_.store(false, std::memory_order_relaxed);
  workers_.clear();
  for (int i = 0; i < options_.num_workers; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  for (auto& worker : workers_) {
    Worker* w = worker.get();
    w->thread = std::thread([this, w] { WorkerLoop(w); });
  }
  network_thread_ = std::thread([this] { NetworkLoop(); });
  started_ = true;
  return true;
}

void Server::Stop() {
  if (!started_) return;
  stopping_.store(true, std::memory_order_release);
  Wake();
  network_thread_.join();
  for (auto& worker : workers_) {
    {
      std::lock_guard<std::mutex> lock(worker->mu);
    }
    worker->cv.notify_all();
    worker->thread.join();
  }
  workers_.clear();
  if (listen_fd_ >= 0) close(listen_fd_);
  if (wake_pipe_[0] >= 0) close(wake_pipe_[0]);
  if (wake_pipe_[1] >= 0) close(wake_pipe_[1]);
  listen_fd_ = -1;
  wake_pipe_[0] = wake_pipe_[1] = -1;
  started_ = false;
}

void Server::Wake() {
  const uint8_t byte = 0;
  // A full pipe already guarantees a pending wakeup; EAGAIN is fine.
  [[maybe_unused]] const ssize_t n = write(wake_pipe_[1], &byte, 1);
}

size_t Server::RouteWorker(const QueryCall& call) const {
  const geom::Point anchor = call.kind == core::QueryKind::kKnn
                                 ? call.position
                                 : call.window.center();
  const int shard =
      engine_.map().ShardOfIndex(engine_.routing_grid().IndexOf(anchor));
  return static_cast<size_t>(shard) % workers_.size();
}

void Server::DispatchQuery(const std::shared_ptr<Conn>& conn,
                           const QueryCall& call) {
  Worker& worker = *workers_[RouteWorker(call)];
  bool shed =
      conn->in_flight.load(std::memory_order_relaxed) >=
      static_cast<int64_t>(options_.session_inflight_limit);
  if (!shed) {
    std::lock_guard<std::mutex> lock(worker.mu);
    if (worker.queue.size() >= options_.worker_queue_capacity) {
      shed = true;
    } else {
      conn->in_flight.fetch_add(1, std::memory_order_relaxed);
      worker.queue.push_back(Job{conn, call});
    }
  }
  if (shed) {
    RetryAfter retry;
    retry.request_id = call.request_id;
    retry.delay_ms = options_.retry_after_ms;
    std::lock_guard<std::mutex> lock(conn->out_mu);
    AppendFrame(FrameType::kRetryAfter, EncodeRetryAfter(retry),
                &conn->outbox);
    counters_.frames_sent.fetch_add(1, std::memory_order_relaxed);
    counters_.retry_after_sent.fetch_add(1, std::memory_order_relaxed);
  } else {
    worker.cv.notify_one();
  }
}

void Server::WorkerLoop(Worker* worker) {
  core::ShardedQueryWorkspace workspace;
  core::QueryOutcome outcome;
  std::vector<uint8_t> frame_bytes;
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(worker->mu);
      worker->cv.wait(lock, [&] {
        return !worker->queue.empty() ||
               stopping_.load(std::memory_order_acquire);
      });
      if (worker->queue.empty()) return;  // stopping, fully drained
      job = std::move(worker->queue.front());
      worker->queue.pop_front();
    }

    // A disconnected session's jobs are skipped (nobody reads the answer),
    // but the in-flight count still resolves below.
    bool gone;
    {
      std::lock_guard<std::mutex> lock(job.conn->out_mu);
      gone = job.conn->gone;
    }
    if (!gone) {
      core::QueryRequest request;
      request.kind = job.call.kind;
      request.position = job.call.position;
      // Clamp k to the database size: k > n answers with all n POIs either
      // way, and the clamp keeps a hostile k from sizing the answer heap.
      request.k = static_cast<int>(std::min<uint64_t>(
          static_cast<uint64_t>(std::max(job.call.k, 0)),
          engine_.total_pois()));
      request.window = job.call.window;
      request.slot = job.call.slot;
      engine_.Execute(request, workspace, &outcome);
      counters_.queries_executed.fetch_add(1, std::memory_order_relaxed);

      QueryAnswer answer = BuildAnswer(job.call, outcome);
      // v1 sessions are epoch-free end to end (see Session::OnFrame).
      if (job.conn->session.version() < 2) answer.epoch = 0;
      frame_bytes.clear();
      AppendFrame(FrameType::kAnswer, EncodeQueryAnswer(answer),
                  &frame_bytes);
      {
        std::lock_guard<std::mutex> lock(job.conn->out_mu);
        if (!job.conn->gone) {
          job.conn->outbox.insert(job.conn->outbox.end(), frame_bytes.begin(),
                                  frame_bytes.end());
          counters_.frames_sent.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
    job.conn->in_flight.fetch_sub(1, std::memory_order_release);
    Wake();
  }
}

bool Server::HandleReadable(const std::shared_ptr<Conn>& conn) {
  uint8_t buffer[65536];
  for (;;) {
    const ssize_t n = read(conn->fd, buffer, sizeof(buffer));
    if (n > 0) {
      counters_.bytes_received.fetch_add(n, std::memory_order_relaxed);
      conn->assembler.Feed(buffer, static_cast<size_t>(n));
      if (static_cast<size_t>(n) < sizeof(buffer)) break;
      continue;
    }
    if (n == 0) return false;  // peer closed (mid-session disconnect is fine)
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    return false;
  }

  Frame frame;
  for (;;) {
    const FrameAssembler::Result result = conn->assembler.Next(&frame);
    if (result == FrameAssembler::Result::kNeedMore) break;
    if (result == FrameAssembler::Result::kError) {
      // Unframeable stream: send a best-effort ERROR and drop.
      ErrorReply error;
      error.code = ErrorCode::kMalformedPayload;
      error.message = conn->assembler.error();
      std::lock_guard<std::mutex> lock(conn->out_mu);
      AppendFrame(FrameType::kError, EncodeErrorReply(error), &conn->outbox);
      counters_.frames_sent.fetch_add(1, std::memory_order_relaxed);
      counters_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      conn->close_after_flush = true;
      return true;
    }
    FrameResult handled;
    {
      std::lock_guard<std::mutex> lock(conn->out_mu);
      handled = conn->session.OnFrame(frame, &conn->outbox);
    }
    for (const QueryCall& call : handled.queries) DispatchQuery(conn, call);
    if (handled.close) {
      conn->close_after_flush = true;
      return true;
    }
  }
  return true;
}

bool Server::FlushConn(Conn* conn) {
  std::lock_guard<std::mutex> lock(conn->out_mu);
  while (conn->out_consumed < conn->outbox.size()) {
    const ssize_t n =
        write(conn->fd, conn->outbox.data() + conn->out_consumed,
              conn->outbox.size() - conn->out_consumed);
    if (n > 0) {
      counters_.bytes_sent.fetch_add(n, std::memory_order_relaxed);
      conn->out_consumed += static_cast<size_t>(n);
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    return false;
  }
  if (conn->out_consumed == conn->outbox.size()) {
    conn->outbox.clear();
    conn->out_consumed = 0;
  } else if (conn->out_consumed > 65536) {
    conn->outbox.erase(
        conn->outbox.begin(),
        conn->outbox.begin() + static_cast<ptrdiff_t>(conn->out_consumed));
    conn->out_consumed = 0;
  }
  return true;
}

void Server::DiscardConn(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  {
    std::lock_guard<std::mutex> lock(it->second->out_mu);
    it->second->gone = true;
  }
  close(fd);
  it->second->fd = -1;
  conns_.erase(it);
  counters_.sessions_closed.fetch_add(1, std::memory_order_relaxed);
}

void Server::NetworkLoop() {
  std::vector<pollfd> pollfds;
  std::vector<int> fds;
  for (;;) {
    const bool stopping = stopping_.load(std::memory_order_acquire);

    pollfds.clear();
    fds.clear();
    pollfds.push_back(pollfd{wake_pipe_[0], POLLIN, 0});
    fds.push_back(wake_pipe_[0]);
    if (!stopping) {
      pollfds.push_back(pollfd{listen_fd_, POLLIN, 0});
      fds.push_back(listen_fd_);
    }
    for (auto& [fd, conn] : conns_) {
      short events = POLLIN;
      {
        std::lock_guard<std::mutex> lock(conn->out_mu);
        if (conn->out_consumed < conn->outbox.size()) events |= POLLOUT;
      }
      pollfds.push_back(pollfd{fd, events, 0});
      fds.push_back(fd);
    }

    // During shutdown the loop exits once every session has drained: no
    // queued answers outstanding and no bytes left to flush.
    if (stopping) {
      bool drained = true;
      for (auto& [fd, conn] : conns_) {
        if (conn->in_flight.load(std::memory_order_acquire) > 0) {
          drained = false;
          break;
        }
        std::lock_guard<std::mutex> lock(conn->out_mu);
        if (conn->out_consumed < conn->outbox.size()) {
          drained = false;
          break;
        }
      }
      if (drained) break;
    }

    const int ready = poll(pollfds.data(), pollfds.size(), 100);
    if (ready < 0 && errno != EINTR) break;

    // Drain the wake pipe.
    if (pollfds[0].revents & POLLIN) {
      uint8_t sink[256];
      while (read(wake_pipe_[0], sink, sizeof(sink)) > 0) {
      }
    }

    // Accept.
    if (!stopping) {
      const pollfd& listen_poll = pollfds[1];
      if (listen_poll.revents & POLLIN) {
        for (;;) {
          const int fd = accept(listen_fd_, nullptr, nullptr);
          if (fd < 0) break;
          if (!SetNonBlocking(fd)) {
            close(fd);
            continue;
          }
          const int one = 1;
          setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
          auto conn = std::make_shared<Conn>(session_context_);
          conn->fd = fd;
          conns_.emplace(fd, std::move(conn));
          counters_.sessions_opened.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }

    // Service connections. Collect removals first: DiscardConn mutates the
    // map we're indexing into through `fds`.
    std::vector<int> discard;
    for (size_t i = stopping ? 1 : 2; i < pollfds.size(); ++i) {
      const pollfd& entry = pollfds[i];
      auto it = conns_.find(fds[i]);
      if (it == conns_.end()) continue;
      const std::shared_ptr<Conn>& conn = it->second;
      if (entry.revents & (POLLERR | POLLHUP | POLLNVAL)) {
        // Flush nothing; the peer is gone.
        discard.push_back(entry.fd);
        continue;
      }
      if ((entry.revents & POLLIN) && !HandleReadable(conn)) {
        discard.push_back(entry.fd);
        continue;
      }
      if (!FlushConn(conn.get())) {
        discard.push_back(entry.fd);
        continue;
      }
      bool flushed;
      {
        std::lock_guard<std::mutex> lock(conn->out_mu);
        flushed = conn->out_consumed >= conn->outbox.size();
      }
      if (conn->close_after_flush && flushed &&
          conn->in_flight.load(std::memory_order_acquire) == 0) {
        discard.push_back(entry.fd);
      }
    }
    for (const int fd : discard) DiscardConn(fd);
  }

  // Shutdown: every remaining session is drained; close them all.
  std::vector<int> remaining;
  remaining.reserve(conns_.size());
  for (auto& [fd, conn] : conns_) remaining.push_back(fd);
  for (const int fd : remaining) DiscardConn(fd);
}

}  // namespace lbsq::server
