#ifndef LBSQ_SERVER_SESSION_H_
#define LBSQ_SERVER_SESSION_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/metrics_registry.h"
#include "core/sharded_query_engine.h"
#include "server/protocol.h"

/// \file
/// The per-session protocol state machine, socket-free: it consumes decoded
/// frames and appends reply bytes to a caller-provided buffer, so the exact
/// logic the server runs is drivable byte-for-byte from unit tests (and
/// from an in-process transport) without a network.
///
/// State machine:
///
///   kAwaitHello --HELLO(version ok)--> kReady --BYE/error--> kClosed
///        |                               |
///        +--- anything else: ERROR ------+--- INDEX_PROBE -> INDEX_DATA
///             frame, then kClosed        +--- BUCKET_GET  -> BUCKET_DATA
///                                        +--- QUERY       -> (dispatched)
///
/// Index probes and bucket gets are answered inline — they are pure reads
/// of the immutable broadcast systems. QUERY frames are *not* executed
/// here: the session decodes and hands them up via `FrameResult::queries`,
/// and the owner (a server worker, or the test harness) executes and
/// encodes the ANSWER. Every protocol violation emits one ERROR frame and
/// closes the session; the server never aborts on client bytes.

namespace lbsq::server {

/// Monotonic server-wide counters. Workers and the network thread bump
/// them lock-free; `ExportTo` snapshots them into a MetricsRegistry (which
/// is single-threaded by design, so the export runs on one thread).
struct ServerCounters {
  std::atomic<int64_t> sessions_opened{0};
  std::atomic<int64_t> sessions_closed{0};
  std::atomic<int64_t> frames_received{0};
  std::atomic<int64_t> frames_sent{0};
  std::atomic<int64_t> bytes_received{0};
  std::atomic<int64_t> bytes_sent{0};
  std::atomic<int64_t> queries_executed{0};
  std::atomic<int64_t> index_probes{0};
  std::atomic<int64_t> buckets_served{0};
  std::atomic<int64_t> retry_after_sent{0};
  std::atomic<int64_t> protocol_errors{0};

  void ExportTo(MetricsRegistry* registry) const;
};

/// Immutable facts a session needs, shared across all sessions.
struct SessionContext {
  const core::ShardedQueryEngine* engine = nullptr;
  /// Epoch advertised in HELLO_ACK (the engine's pinned epoch).
  uint64_t epoch = 0;
  ServerCounters* counters = nullptr;
};

/// What one inbound frame produced (besides reply bytes).
struct FrameResult {
  /// The session must be closed (BYE, or a protocol error after the ERROR
  /// frame was appended).
  bool close = false;
  /// Decoded queries to dispatch (at most one per frame today; a vector so
  /// batching extensions don't change the signature).
  std::vector<QueryCall> queries;
};

class Session {
 public:
  enum class State { kAwaitHello, kReady, kClosed };

  explicit Session(const SessionContext& context) : context_(context) {}

  State state() const { return state_; }
  /// Negotiated protocol version (0 before a successful HELLO).
  uint32_t version() const { return version_; }

  /// Handles one inbound frame; appends any reply frames (wire bytes) to
  /// `*out`. Counters for frames/errors are bumped here; the transport owns
  /// byte counters.
  FrameResult OnFrame(const Frame& frame, std::vector<uint8_t>* out);

 private:
  /// Appends an ERROR frame and moves to kClosed.
  void Fail(ErrorCode code, const char* message, std::vector<uint8_t>* out,
            FrameResult* result);

  SessionContext context_;
  State state_ = State::kAwaitHello;
  uint32_t version_ = 0;
};

}  // namespace lbsq::server

#endif  // LBSQ_SERVER_SESSION_H_
