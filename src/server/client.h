#ifndef LBSQ_SERVER_CLIENT_H_
#define LBSQ_SERVER_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "broadcast/air_index.h"
#include "broadcast/packet.h"
#include "server/protocol.h"

/// \file
/// Blocking lbsq_server client: connect, negotiate, then issue the
/// three-step access vocabulary (index probe, bucket retrieval, query) over
/// one session. Queries may be pipelined — `SendQuery` does not wait — and
/// answers are matched by the echoed request id. Used by `lbsq_load`, the
/// end-to-end tests, and as the reference implementation of the protocol's
/// client side.

namespace lbsq::server {

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects to 127.0.0.1:`port` and performs HELLO with the given
  /// version range. False (with *error) on connect, I/O, or negotiation
  /// failure.
  bool Connect(uint16_t port, uint32_t min_version, uint32_t max_version,
               std::string* error);
  /// The server's HELLO_ACK (valid after Connect).
  const HelloAck& hello() const { return hello_; }

  /// Step 1+2 of the access protocol: fetch one shard's air-index
  /// directory.
  bool FetchIndex(uint32_t shard,
                  std::vector<broadcast::AirIndex::Entry>* entries,
                  uint64_t* epoch, std::string* error);
  /// Step 3: fetch one data bucket.
  bool FetchBucket(uint32_t shard, uint64_t bucket,
                   broadcast::DataBucket* out, std::string* error);

  /// Sends one QUERY frame without waiting for the answer.
  bool SendQuery(const QueryCall& call, std::string* error);

  /// What the next server frame was.
  enum class Reply { kAnswer, kRetryAfter, kClosed, kError };
  /// Receives the next ANSWER or RETRY_AFTER (filling the matching
  /// out-param). kClosed on clean server close; kError (with *error) on
  /// I/O, framing, or an ERROR frame.
  Reply Receive(QueryAnswer* answer, RetryAfter* retry, std::string* error);

  /// Sends BYE and closes. Safe on a never-connected client.
  void Close();

 private:
  bool SendFrame(FrameType type, const std::vector<uint8_t>& payload,
                 std::string* error);
  /// Blocks until one complete frame arrives. False on EOF/IO/framing
  /// error (`*closed` distinguishes clean EOF at a frame boundary).
  bool ReceiveFrame(Frame* frame, bool* closed, std::string* error);

  int fd_ = -1;
  FrameAssembler assembler_;
  HelloAck hello_;
};

}  // namespace lbsq::server

#endif  // LBSQ_SERVER_CLIENT_H_
