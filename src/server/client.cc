#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace lbsq::server {

Client::~Client() { Close(); }

void Client::Close() {
  if (fd_ < 0) return;
  // Best-effort BYE so the server logs a clean close.
  std::string ignored;
  SendFrame(FrameType::kBye, {}, &ignored);
  close(fd_);
  fd_ = -1;
}

bool Client::Connect(uint16_t port, uint32_t min_version,
                     uint32_t max_version, std::string* error) {
  fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    *error = "socket() failed";
    return false;
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    *error = "connect() failed";
    close(fd_);
    fd_ = -1;
    return false;
  }
  const int one = 1;
  setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  HelloRequest hello;
  hello.min_version = min_version;
  hello.max_version = max_version;
  if (!SendFrame(FrameType::kHello, EncodeHello(hello), error)) return false;
  Frame frame;
  bool closed = false;
  if (!ReceiveFrame(&frame, &closed, error)) {
    if (closed) *error = "server closed during HELLO";
    return false;
  }
  if (frame.type == FrameType::kError) {
    ErrorReply reply;
    *error = DecodeErrorReply(frame.payload, &reply)
                 ? "server rejected HELLO: " + reply.message
                 : "server rejected HELLO";
    return false;
  }
  if (frame.type != FrameType::kHelloAck ||
      !DecodeHelloAck(frame.payload, &hello_)) {
    *error = "malformed HELLO_ACK";
    return false;
  }
  return true;
}

bool Client::SendFrame(FrameType type, const std::vector<uint8_t>& payload,
                       std::string* error) {
  if (fd_ < 0) {
    *error = "not connected";
    return false;
  }
  std::vector<uint8_t> wire;
  AppendFrame(type, payload, &wire);
  size_t sent = 0;
  while (sent < wire.size()) {
    const ssize_t n = send(fd_, wire.data() + sent, wire.size() - sent,
                           MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    *error = "send() failed";
    return false;
  }
  return true;
}

bool Client::ReceiveFrame(Frame* frame, bool* closed, std::string* error) {
  *closed = false;
  for (;;) {
    switch (assembler_.Next(frame)) {
      case FrameAssembler::Result::kFrame:
        return true;
      case FrameAssembler::Result::kError:
        *error = "framing error: " + assembler_.error();
        return false;
      case FrameAssembler::Result::kNeedMore:
        break;
    }
    uint8_t buffer[65536];
    const ssize_t n = recv(fd_, buffer, sizeof(buffer), 0);
    if (n > 0) {
      assembler_.Feed(buffer, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) {
      *closed = true;
      *error = "connection closed";
      return false;
    }
    if (errno == EINTR) continue;
    *error = "recv() failed";
    return false;
  }
}

bool Client::FetchIndex(uint32_t shard,
                        std::vector<broadcast::AirIndex::Entry>* entries,
                        uint64_t* epoch, std::string* error) {
  IndexProbe probe;
  probe.shard = shard;
  if (!SendFrame(FrameType::kIndexProbe, EncodeIndexProbe(probe), error)) {
    return false;
  }
  Frame frame;
  bool closed = false;
  if (!ReceiveFrame(&frame, &closed, error)) return false;
  uint32_t got_shard = 0;
  if (frame.type != FrameType::kIndexData ||
      !DecodeIndexData(frame.payload, &got_shard, entries, epoch) ||
      got_shard != shard) {
    *error = "malformed INDEX_DATA";
    return false;
  }
  return true;
}

bool Client::FetchBucket(uint32_t shard, uint64_t bucket,
                         broadcast::DataBucket* out, std::string* error) {
  BucketGet get;
  get.shard = shard;
  get.bucket = bucket;
  if (!SendFrame(FrameType::kBucketGet, EncodeBucketGet(get), error)) {
    return false;
  }
  Frame frame;
  bool closed = false;
  if (!ReceiveFrame(&frame, &closed, error)) return false;
  uint32_t got_shard = 0;
  if (frame.type != FrameType::kBucketData ||
      !DecodeBucketData(frame.payload, &got_shard, out) ||
      got_shard != shard) {
    *error = "malformed BUCKET_DATA";
    return false;
  }
  return true;
}

bool Client::SendQuery(const QueryCall& call, std::string* error) {
  return SendFrame(FrameType::kQuery, EncodeQueryCall(call), error);
}

Client::Reply Client::Receive(QueryAnswer* answer, RetryAfter* retry,
                              std::string* error) {
  Frame frame;
  bool closed = false;
  if (!ReceiveFrame(&frame, &closed, error)) {
    return closed ? Reply::kClosed : Reply::kError;
  }
  switch (frame.type) {
    case FrameType::kAnswer:
      if (!DecodeQueryAnswer(frame.payload, answer)) {
        *error = "malformed ANSWER";
        return Reply::kError;
      }
      return Reply::kAnswer;
    case FrameType::kRetryAfter:
      if (!DecodeRetryAfter(frame.payload, retry)) {
        *error = "malformed RETRY_AFTER";
        return Reply::kError;
      }
      return Reply::kRetryAfter;
    case FrameType::kError: {
      ErrorReply reply;
      *error = DecodeErrorReply(frame.payload, &reply)
                   ? "server error: " + reply.message
                   : "server error";
      return Reply::kError;
    }
    default:
      *error = "unexpected frame type";
      return Reply::kError;
  }
}

}  // namespace lbsq::server
