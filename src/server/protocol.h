#ifndef LBSQ_SERVER_PROTOCOL_H_
#define LBSQ_SERVER_PROTOCOL_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "broadcast/air_index.h"
#include "broadcast/packet.h"
#include "core/query_engine.h"
#include "geom/point.h"
#include "geom/rect.h"

/// \file
/// The lbsq_server wire protocol: length-prefixed binary frames carrying
/// the three-step broadcast access vocabulary (hello/version negotiation →
/// index probe → bucket retrieval → query answer) over a byte stream.
///
/// Frame layout (little-endian):
///   frame := u32le length | u8 type | payload
/// where `length` counts the type byte plus the payload (so a frame is
/// `4 + length` bytes on the wire) and is bounded by kMaxFrameBytes — a
/// prefix above the bound is a protocol error, not a large allocation.
///
/// Payloads reuse the broadcast wire primitives (`broadcast::ByteWriter` /
/// `ByteReader`: LEB128 varints, little-endian binary64) and, for the bulk
/// types, the broadcast wire format itself: INDEX_DATA and BUCKET_DATA
/// carry `EncodeIndexSegmentFramed` / `EncodeBucketFramed` bytes verbatim
/// (CRC-32 trailer included), so a client downloads exactly what the
/// broadcast channel would transmit.
///
/// Version negotiation mirrors the broadcast wire's versioning: protocol
/// v1 serves epoch-free (wire v1) frames and suits static-world clients;
/// v2 adds the epoch tags (wire v2 frames when the epoch is nonzero). The
/// client's HELLO carries its [min, max] supported range; the server picks
/// the highest version both sides support, or rejects the session.
///
/// Every decoder here is bounds-checked and total: malformed client input
/// yields a `false` return (and an ERROR frame + close at the session
/// layer), never an LBSQ_CHECK abort — the server must survive arbitrary
/// bytes from the network.

namespace lbsq::server {

/// 'LBSQ' — leads every HELLO payload.
inline constexpr uint32_t kProtocolMagic = 0x5153424Cu;
/// Supported protocol versions (see the versioning note above).
inline constexpr uint32_t kProtocolVersionMin = 1;
inline constexpr uint32_t kProtocolVersionMax = 2;
/// Upper bound on `length` (type byte + payload). Frames are query answers
/// and single broadcast buckets/segments — 1 MiB is generous; anything
/// larger is a corrupt or hostile prefix.
inline constexpr uint32_t kMaxFrameBytes = 1u << 20;
/// Bytes of the length prefix.
inline constexpr size_t kFramePrefixBytes = 4;

/// Frame types. Client-initiated types have the high bit clear, server
/// replies have it set.
enum class FrameType : uint8_t {
  kHello = 0x01,
  kIndexProbe = 0x02,
  kBucketGet = 0x03,
  kQuery = 0x04,
  kBye = 0x05,

  kHelloAck = 0x81,
  kIndexData = 0x82,
  kBucketData = 0x83,
  kAnswer = 0x84,
  kRetryAfter = 0x85,
  kError = 0x8F,
};

/// One decoded frame.
struct Frame {
  FrameType type = FrameType::kError;
  std::vector<uint8_t> payload;
};

/// Appends the wire encoding of one frame to `*out`.
void AppendFrame(FrameType type, std::span<const uint8_t> payload,
                 std::vector<uint8_t>* out);

/// Incremental frame parser: feed stream bytes in arbitrary chunks,
/// extract complete frames. A malformed prefix (length of 0 — no type
/// byte — or above kMaxFrameBytes) latches the error state; the stream
/// cannot be resynchronized after that.
class FrameAssembler {
 public:
  enum class Result {
    kFrame,     ///< *frame was filled with the next complete frame.
    kNeedMore,  ///< No complete frame buffered; feed more bytes.
    kError,     ///< Malformed prefix; the error state is latched.
  };

  /// Appends `size` stream bytes.
  void Feed(const uint8_t* data, size_t size);
  /// Extracts the next complete frame.
  Result Next(Frame* frame);
  /// Human-readable reason after kError.
  const std::string& error() const { return error_; }

 private:
  std::vector<uint8_t> buffer_;
  size_t consumed_ = 0;
  bool failed_ = false;
  std::string error_;
};

/// HELLO: magic, then the client's supported version range.
struct HelloRequest {
  uint32_t min_version = kProtocolVersionMin;
  uint32_t max_version = kProtocolVersionMax;
};

/// HELLO_ACK: the negotiated version plus the deployment facts a client
/// needs before its first probe.
struct HelloAck {
  uint32_t version = 0;
  uint32_t num_shards = 0;
  uint64_t epoch = 0;
  uint64_t poi_count = 0;
  geom::Rect world;
};

/// INDEX_PROBE: which shard's air-index directory to fetch.
struct IndexProbe {
  uint32_t shard = 0;
};

/// BUCKET_GET: one data bucket of one shard's broadcast cycle.
struct BucketGet {
  uint32_t shard = 0;
  uint64_t bucket = 0;
};

/// QUERY: one location-based query. `request_id` is echoed on the answer
/// (and on RETRY_AFTER) so a pipelining client can match replies that
/// arrive out of order across workers.
struct QueryCall {
  uint64_t request_id = 0;
  core::QueryKind kind = core::QueryKind::kKnn;
  geom::Point position;
  int k = 0;
  geom::Rect window;
  int64_t slot = 0;
};

/// ANSWER: the answer plane of one query (ids + distance bit patterns for
/// kNN, ids in canonical order for windows — exactly what the simulator's
/// answer digest folds), the epoch stamp, and the broadcast cost.
struct QueryAnswer {
  uint64_t request_id = 0;
  core::QueryKind kind = core::QueryKind::kKnn;
  uint64_t epoch = 0;
  /// kNN answer in canonical (distance, id) order.
  std::vector<int64_t> neighbor_ids;
  std::vector<double> neighbor_distances;
  /// Window answer in canonical id order.
  std::vector<int64_t> poi_ids;
  /// Broadcast cost of the answer (multi-shard conventions).
  int64_t access_latency = 0;
  int64_t tuning_time = 0;
  int64_t buckets_read = 0;
};

/// RETRY_AFTER: the server shed this request (worker queue or per-session
/// in-flight budget full); retry after the suggested delay.
struct RetryAfter {
  uint64_t request_id = 0;
  uint32_t delay_ms = 0;
};

/// ERROR reply codes. Every ERROR closes the session.
enum class ErrorCode : uint32_t {
  kBadMagic = 1,
  kVersionMismatch = 2,
  kBadState = 3,
  kMalformedPayload = 4,
  kBadShard = 5,
  kBadBucket = 6,
  kShuttingDown = 7,
};

struct ErrorReply {
  ErrorCode code = ErrorCode::kMalformedPayload;
  std::string message;
};

/// Payload encoders (frame payload only — wrap with AppendFrame). Each
/// decoder returns false on any malformed payload (truncation, trailing
/// bytes, out-of-range values) without touching process state.
std::vector<uint8_t> EncodeHello(const HelloRequest& hello);
bool DecodeHello(std::span<const uint8_t> payload, HelloRequest* out);

std::vector<uint8_t> EncodeHelloAck(const HelloAck& ack);
bool DecodeHelloAck(std::span<const uint8_t> payload, HelloAck* out);

std::vector<uint8_t> EncodeIndexProbe(const IndexProbe& probe);
bool DecodeIndexProbe(std::span<const uint8_t> payload, IndexProbe* out);

std::vector<uint8_t> EncodeBucketGet(const BucketGet& get);
bool DecodeBucketGet(std::span<const uint8_t> payload, BucketGet* out);

std::vector<uint8_t> EncodeQueryCall(const QueryCall& call);
bool DecodeQueryCall(std::span<const uint8_t> payload, QueryCall* out);

std::vector<uint8_t> EncodeQueryAnswer(const QueryAnswer& answer);
bool DecodeQueryAnswer(std::span<const uint8_t> payload, QueryAnswer* out);

std::vector<uint8_t> EncodeRetryAfter(const RetryAfter& retry);
bool DecodeRetryAfter(std::span<const uint8_t> payload, RetryAfter* out);

std::vector<uint8_t> EncodeErrorReply(const ErrorReply& error);
bool DecodeErrorReply(std::span<const uint8_t> payload, ErrorReply* out);

/// INDEX_DATA payload: varint shard, then the framed broadcast-wire index
/// segment verbatim. `entries` + `epoch` come from the shard's system; a
/// v1 session always serves epoch-free (wire v1) segments.
std::vector<uint8_t> EncodeIndexData(
    uint32_t shard, const std::vector<broadcast::AirIndex::Entry>& entries,
    uint64_t epoch);
bool DecodeIndexData(std::span<const uint8_t> payload, uint32_t* shard,
                     std::vector<broadcast::AirIndex::Entry>* entries,
                     uint64_t* epoch);

/// BUCKET_DATA payload: varint shard, then the framed broadcast-wire
/// bucket verbatim.
std::vector<uint8_t> EncodeBucketData(uint32_t shard,
                                      const broadcast::DataBucket& bucket);
bool DecodeBucketData(std::span<const uint8_t> payload, uint32_t* shard,
                      broadcast::DataBucket* bucket);

/// Builds the ANSWER for one executed query: copies the outcome's answer
/// plane (in its canonical order) and cost stats. Shared by the server
/// workers and the in-process tests.
QueryAnswer BuildAnswer(const QueryCall& call,
                        const core::QueryOutcome& outcome);

}  // namespace lbsq::server

#endif  // LBSQ_SERVER_PROTOCOL_H_
