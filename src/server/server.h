#ifndef LBSQ_SERVER_SERVER_H_
#define LBSQ_SERVER_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/metrics_registry.h"
#include "core/sharded_query_engine.h"
#include "server/session.h"

/// \file
/// The lbsq_server runtime: a TCP acceptor event loop plus N query worker
/// threads over one immutable `ShardedQueryEngine`.
///
/// Threading model (one network thread, N workers):
///  - The network thread owns every socket and every `Session`: it accepts
///    connections, reads stream bytes into per-session `FrameAssembler`s,
///    runs the protocol state machine, answers index probes and bucket
///    gets inline (pure reads of the immutable broadcast systems), and
///    flushes per-session outboxes. QUERY frames are routed to a worker by
///    the query's home shard (`shard % num_workers`), so a given shard's
///    working set stays hot on one thread.
///  - Each worker owns one `ShardedQueryWorkspace` and one reusable
///    `QueryOutcome` — the query path performs no steady-state heap
///    allocation — executes jobs from its bounded queue, encodes the
///    ANSWER, and appends it to the session's outbox (a mutex-guarded byte
///    buffer, the only state shared between the two sides), then wakes the
///    network thread through a self-pipe.
///
/// Backpressure is explicit, never unbounded buffering: a QUERY that finds
/// its worker's queue at capacity — or its session over the in-flight
/// budget — is answered immediately with RETRY_AFTER (echoing the request
/// id and a suggested delay) and counted in
/// `ServerCounters::retry_after_sent`. The client retries; the server's
/// memory stays bounded by `num_workers * queue_capacity` outstanding
/// queries.
///
/// Shutdown drains: `Stop()` stops accepting, lets workers finish every
/// queued job, flushes session outboxes, then joins all threads.
/// Disconnects are safe at any point: outstanding jobs hold the connection
/// alive through a shared_ptr and discard their answer when the connection
/// is gone.

namespace lbsq::server {

struct ServerOptions {
  /// TCP port to bind on 127.0.0.1 (0 = ephemeral; read it back with
  /// `port()` after Start).
  uint16_t port = 0;
  /// Query worker threads.
  int num_workers = 1;
  /// Bounded per-worker queue: queries queued beyond this are shed with
  /// RETRY_AFTER.
  size_t worker_queue_capacity = 256;
  /// Per-session outstanding-query budget; exceeding it is shed likewise.
  size_t session_inflight_limit = 64;
  /// Suggested client delay carried in RETRY_AFTER frames.
  uint32_t retry_after_ms = 10;
};

class Server {
 public:
  /// Serves `engine` (not owned; must outlive the server). `epoch` is the
  /// pinned world epoch advertised to v2 clients.
  Server(const core::ShardedQueryEngine& engine, uint64_t epoch,
         const ServerOptions& options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds and spawns the threads. False (with `*error` set) on bind
  /// failure.
  bool Start(std::string* error);
  /// Drains and joins; idempotent.
  void Stop();

  /// The bound port (after a successful Start).
  uint16_t port() const { return port_; }
  const ServerCounters& counters() const { return counters_; }
  /// Snapshots the counters into `registry` (single-threaded export).
  void ExportMetrics(MetricsRegistry* registry) const {
    counters_.ExportTo(registry);
  }

 private:
  /// One connection. The network thread owns fd/session/assembler; workers
  /// touch only `out_mu`-guarded and atomic members.
  struct Conn {
    explicit Conn(const SessionContext& context) : session(context) {}

    int fd = -1;
    Session session;
    FrameAssembler assembler;
    /// Reply bytes pending write, appended by both sides under `out_mu`.
    std::mutex out_mu;
    std::vector<uint8_t> outbox;
    size_t out_consumed = 0;
    /// Queries dispatched but not yet answered.
    std::atomic<int64_t> in_flight{0};
    /// Set (under out_mu) when the network thread discards the connection;
    /// workers drop their answers instead of appending.
    bool gone = false;
    /// Network-thread only: close once the outbox drains.
    bool close_after_flush = false;
  };

  struct Job {
    std::shared_ptr<Conn> conn;
    QueryCall call;
  };

  struct Worker {
    std::thread thread;
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Job> queue;
  };

  void NetworkLoop();
  void WorkerLoop(Worker* worker);
  /// Reads all available bytes; parses and handles frames. False when the
  /// connection must be discarded (EOF, read error, framing error).
  bool HandleReadable(const std::shared_ptr<Conn>& conn);
  /// Routes one decoded query: enqueue, or shed with RETRY_AFTER.
  void DispatchQuery(const std::shared_ptr<Conn>& conn, const QueryCall& call);
  /// Writes as much outbox as the socket accepts. False on write error.
  bool FlushConn(Conn* conn);
  /// Marks the connection gone, closes the fd, and forgets it.
  void DiscardConn(int fd);
  /// The worker index serving `call`'s home shard.
  size_t RouteWorker(const QueryCall& call) const;
  /// Nudges the network thread's poll.
  void Wake();

  const core::ShardedQueryEngine& engine_;
  ServerOptions options_;
  SessionContext session_context_;
  ServerCounters counters_;

  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  bool started_ = false;
  std::thread network_thread_;
  std::vector<std::unique_ptr<Worker>> workers_;
  /// Live connections by fd. Network-thread only.
  std::unordered_map<int, std::shared_ptr<Conn>> conns_;
};

}  // namespace lbsq::server

#endif  // LBSQ_SERVER_SERVER_H_
