#ifndef LBSQ_SERVER_LOAD_GEN_H_
#define LBSQ_SERVER_LOAD_GEN_H_

#include <cstdint>
#include <string>

#include "sim/config.h"

/// \file
/// Workload replay against a running lbsq_server: regenerates the
/// simulator's deterministic query workload (same RNG streams, same
/// mobility trajectories, same Poisson arrivals) from a `SimConfig`,
/// replays the measured events over binary client sessions, and folds the
/// answers with the simulator's digest primitive — so the resulting digest
/// is directly diffable against `lbsq_sim --no-approximate` on the same
/// config and seed. Shared by the `lbsq_load` tool and the in-process
/// end-to-end tests.
///
/// Why the digest matches: with approximate kNN acceptance disabled every
/// simulator answer is exact (equal to the brute-force oracle), making the
/// measured answer stream a pure function of (config, seed) — independent
/// of peer sharing, caching, and shard count. A peerless replay of the same
/// events against a server over the same POI set therefore reproduces the
/// digest bit-for-bit.

namespace lbsq::server {

struct LoadOptions {
  uint16_t port = 0;
  /// Concurrent client connections; measured events are dealt round-robin.
  int connections = 1;
  /// Outstanding pipelined queries per connection.
  int pipeline = 16;
  /// Queries per session: each connection re-handshakes after this many,
  /// so sessions/sec measures the full hello→query→bye cycle.
  int queries_per_session = 256;
  /// Ignore RETRY_AFTER's suggested delay and resend immediately —
  /// deliberately overrunning the server's budgets to exercise (and
  /// measure) backpressure.
  bool overload = false;
  uint32_t min_version = 1;
  uint32_t max_version = 2;
};

struct LoadResult {
  bool ok = false;
  std::string error;
  /// The simulator-compatible answer digest over measured events, folded
  /// in event order.
  uint64_t digest = 0;
  int64_t queries = 0;
  int64_t retries_received = 0;
  int64_t sessions = 0;
  double elapsed_s = 0.0;
  double sessions_per_sec = 0.0;
  double queries_per_sec = 0.0;
  /// Per-query round-trip latency percentiles, microseconds (including
  /// any RETRY_AFTER round trips).
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
};

/// Replays `config`'s measured workload against the server on
/// `options.port`. Blocks until every measured event is answered (or a
/// session fails).
LoadResult ReplayWorkload(const sim::SimConfig& config,
                          const LoadOptions& options);

}  // namespace lbsq::server

#endif  // LBSQ_SERVER_LOAD_GEN_H_
