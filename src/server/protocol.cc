#include "server/protocol.h"

#include <algorithm>
#include <cstring>

#include "broadcast/wire.h"
#include "common/check.h"

namespace lbsq::server {

namespace {

/// Longest ERROR message accepted on decode — a hostile peer must not make
/// the client allocate unboundedly.
constexpr uint64_t kMaxErrorMessageBytes = 1024;

void PutRect(broadcast::ByteWriter* writer, const geom::Rect& rect) {
  writer->PutDouble(rect.x1);
  writer->PutDouble(rect.y1);
  writer->PutDouble(rect.x2);
  writer->PutDouble(rect.y2);
}

geom::Rect GetRect(broadcast::ByteReader* reader) {
  geom::Rect rect;
  rect.x1 = reader->GetDouble();
  rect.y1 = reader->GetDouble();
  rect.x2 = reader->GetDouble();
  rect.y2 = reader->GetDouble();
  return rect;
}

/// True when the reader consumed the whole payload without error — every
/// decoder's success condition (trailing bytes are malformed input).
bool Consumed(const broadcast::ByteReader& reader) {
  return reader.ok() && reader.remaining() == 0;
}

}  // namespace

void AppendFrame(FrameType type, std::span<const uint8_t> payload,
                 std::vector<uint8_t>* out) {
  const uint64_t length = 1 + payload.size();
  LBSQ_CHECK(length <= kMaxFrameBytes);
  const uint32_t prefix = static_cast<uint32_t>(length);
  out->push_back(static_cast<uint8_t>(prefix & 0xFF));
  out->push_back(static_cast<uint8_t>((prefix >> 8) & 0xFF));
  out->push_back(static_cast<uint8_t>((prefix >> 16) & 0xFF));
  out->push_back(static_cast<uint8_t>((prefix >> 24) & 0xFF));
  out->push_back(static_cast<uint8_t>(type));
  out->insert(out->end(), payload.begin(), payload.end());
}

void FrameAssembler::Feed(const uint8_t* data, size_t size) {
  if (failed_) return;
  buffer_.insert(buffer_.end(), data, data + size);
}

FrameAssembler::Result FrameAssembler::Next(Frame* frame) {
  if (failed_) return Result::kError;
  const size_t available = buffer_.size() - consumed_;
  if (available < kFramePrefixBytes) return Result::kNeedMore;
  const uint8_t* p = buffer_.data() + consumed_;
  const uint32_t length = static_cast<uint32_t>(p[0]) |
                          (static_cast<uint32_t>(p[1]) << 8) |
                          (static_cast<uint32_t>(p[2]) << 16) |
                          (static_cast<uint32_t>(p[3]) << 24);
  if (length == 0) {
    failed_ = true;
    error_ = "frame length 0 (no type byte)";
    return Result::kError;
  }
  if (length > kMaxFrameBytes) {
    failed_ = true;
    error_ = "frame length exceeds limit";
    return Result::kError;
  }
  if (available < kFramePrefixBytes + length) return Result::kNeedMore;
  frame->type = static_cast<FrameType>(p[kFramePrefixBytes]);
  frame->payload.assign(p + kFramePrefixBytes + 1,
                        p + kFramePrefixBytes + length);
  consumed_ += kFramePrefixBytes + length;
  // Compact once the dead prefix dominates, so a long-lived session's
  // buffer stays proportional to its unparsed tail.
  if (consumed_ > 4096 && consumed_ * 2 > buffer_.size()) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  return Result::kFrame;
}

std::vector<uint8_t> EncodeHello(const HelloRequest& hello) {
  broadcast::ByteWriter writer;
  writer.PutVarint(kProtocolMagic);
  writer.PutVarint(hello.min_version);
  writer.PutVarint(hello.max_version);
  return writer.bytes();
}

bool DecodeHello(std::span<const uint8_t> payload, HelloRequest* out) {
  broadcast::ByteReader reader(payload.data(), payload.size());
  if (reader.GetVarint() != kProtocolMagic) return false;
  const uint64_t min_version = reader.GetVarint();
  const uint64_t max_version = reader.GetVarint();
  if (!Consumed(reader)) return false;
  if (min_version == 0 || min_version > max_version) return false;
  if (max_version > UINT32_MAX) return false;
  out->min_version = static_cast<uint32_t>(min_version);
  out->max_version = static_cast<uint32_t>(max_version);
  return true;
}

std::vector<uint8_t> EncodeHelloAck(const HelloAck& ack) {
  broadcast::ByteWriter writer;
  writer.PutVarint(ack.version);
  writer.PutVarint(ack.num_shards);
  writer.PutVarint(ack.epoch);
  writer.PutVarint(ack.poi_count);
  PutRect(&writer, ack.world);
  return writer.bytes();
}

bool DecodeHelloAck(std::span<const uint8_t> payload, HelloAck* out) {
  broadcast::ByteReader reader(payload.data(), payload.size());
  const uint64_t version = reader.GetVarint();
  const uint64_t num_shards = reader.GetVarint();
  out->epoch = reader.GetVarint();
  out->poi_count = reader.GetVarint();
  out->world = GetRect(&reader);
  if (!Consumed(reader)) return false;
  if (version == 0 || version > UINT32_MAX) return false;
  if (num_shards == 0 || num_shards > UINT32_MAX) return false;
  out->version = static_cast<uint32_t>(version);
  out->num_shards = static_cast<uint32_t>(num_shards);
  return true;
}

std::vector<uint8_t> EncodeIndexProbe(const IndexProbe& probe) {
  broadcast::ByteWriter writer;
  writer.PutVarint(probe.shard);
  return writer.bytes();
}

bool DecodeIndexProbe(std::span<const uint8_t> payload, IndexProbe* out) {
  broadcast::ByteReader reader(payload.data(), payload.size());
  const uint64_t shard = reader.GetVarint();
  if (!Consumed(reader) || shard > UINT32_MAX) return false;
  out->shard = static_cast<uint32_t>(shard);
  return true;
}

std::vector<uint8_t> EncodeBucketGet(const BucketGet& get) {
  broadcast::ByteWriter writer;
  writer.PutVarint(get.shard);
  writer.PutVarint(get.bucket);
  return writer.bytes();
}

bool DecodeBucketGet(std::span<const uint8_t> payload, BucketGet* out) {
  broadcast::ByteReader reader(payload.data(), payload.size());
  const uint64_t shard = reader.GetVarint();
  out->bucket = reader.GetVarint();
  if (!Consumed(reader) || shard > UINT32_MAX) return false;
  out->shard = static_cast<uint32_t>(shard);
  return true;
}

std::vector<uint8_t> EncodeQueryCall(const QueryCall& call) {
  broadcast::ByteWriter writer;
  writer.PutVarint(call.request_id);
  writer.PutU8(call.kind == core::QueryKind::kKnn ? 0 : 1);
  writer.PutVarint(static_cast<uint64_t>(call.slot));
  if (call.kind == core::QueryKind::kKnn) {
    writer.PutDouble(call.position.x);
    writer.PutDouble(call.position.y);
    writer.PutVarint(static_cast<uint64_t>(call.k));
  } else {
    PutRect(&writer, call.window);
  }
  return writer.bytes();
}

bool DecodeQueryCall(std::span<const uint8_t> payload, QueryCall* out) {
  broadcast::ByteReader reader(payload.data(), payload.size());
  out->request_id = reader.GetVarint();
  const uint8_t kind = reader.GetU8();
  const uint64_t slot = reader.GetVarint();
  if (kind > 1 || slot > INT64_MAX) return false;
  out->slot = static_cast<int64_t>(slot);
  if (kind == 0) {
    // The encoding is kind-safe by construction: a kNN call cannot carry a
    // window nor a window call a k, so a decoded QueryCall always maps to a
    // well-formed core::QueryRequest.
    out->kind = core::QueryKind::kKnn;
    out->position.x = reader.GetDouble();
    out->position.y = reader.GetDouble();
    const uint64_t k = reader.GetVarint();
    if (k > INT32_MAX) return false;
    out->k = static_cast<int>(k);
    out->window = geom::Rect();
  } else {
    out->kind = core::QueryKind::kWindow;
    out->window = GetRect(&reader);
    if (out->window.empty()) return false;
    out->position = geom::Point();
    out->k = 0;
  }
  return Consumed(reader);
}

std::vector<uint8_t> EncodeQueryAnswer(const QueryAnswer& answer) {
  broadcast::ByteWriter writer;
  writer.PutVarint(answer.request_id);
  writer.PutU8(answer.kind == core::QueryKind::kKnn ? 0 : 1);
  writer.PutVarint(answer.epoch);
  if (answer.kind == core::QueryKind::kKnn) {
    LBSQ_CHECK(answer.neighbor_ids.size() == answer.neighbor_distances.size());
    writer.PutVarint(answer.neighbor_ids.size());
    for (size_t i = 0; i < answer.neighbor_ids.size(); ++i) {
      writer.PutVarint(static_cast<uint64_t>(answer.neighbor_ids[i]));
      writer.PutDouble(answer.neighbor_distances[i]);
    }
  } else {
    writer.PutVarint(answer.poi_ids.size());
    for (const int64_t id : answer.poi_ids) {
      writer.PutVarint(static_cast<uint64_t>(id));
    }
  }
  writer.PutVarint(static_cast<uint64_t>(answer.access_latency));
  writer.PutVarint(static_cast<uint64_t>(answer.tuning_time));
  writer.PutVarint(static_cast<uint64_t>(answer.buckets_read));
  return writer.bytes();
}

bool DecodeQueryAnswer(std::span<const uint8_t> payload, QueryAnswer* out) {
  broadcast::ByteReader reader(payload.data(), payload.size());
  out->request_id = reader.GetVarint();
  const uint8_t kind = reader.GetU8();
  out->epoch = reader.GetVarint();
  if (kind > 1) return false;
  out->kind = kind == 0 ? core::QueryKind::kKnn : core::QueryKind::kWindow;
  out->neighbor_ids.clear();
  out->neighbor_distances.clear();
  out->poi_ids.clear();
  const uint64_t count = reader.GetVarint();
  // Each entry needs at least one encoded byte, so `remaining` bounds the
  // plausible count — rejecting hostile counts before reserving.
  if (!reader.ok() || count > reader.remaining()) return false;
  if (out->kind == core::QueryKind::kKnn) {
    out->neighbor_ids.reserve(count);
    out->neighbor_distances.reserve(count);
    for (uint64_t i = 0; i < count && reader.ok(); ++i) {
      const uint64_t id = reader.GetVarint();
      if (id > INT64_MAX) return false;
      out->neighbor_ids.push_back(static_cast<int64_t>(id));
      out->neighbor_distances.push_back(reader.GetDouble());
    }
  } else {
    out->poi_ids.reserve(count);
    for (uint64_t i = 0; i < count && reader.ok(); ++i) {
      const uint64_t id = reader.GetVarint();
      if (id > INT64_MAX) return false;
      out->poi_ids.push_back(static_cast<int64_t>(id));
    }
  }
  const uint64_t latency = reader.GetVarint();
  const uint64_t tuning = reader.GetVarint();
  const uint64_t buckets = reader.GetVarint();
  if (!Consumed(reader)) return false;
  if (latency > INT64_MAX || tuning > INT64_MAX || buckets > INT64_MAX) {
    return false;
  }
  out->access_latency = static_cast<int64_t>(latency);
  out->tuning_time = static_cast<int64_t>(tuning);
  out->buckets_read = static_cast<int64_t>(buckets);
  return true;
}

std::vector<uint8_t> EncodeRetryAfter(const RetryAfter& retry) {
  broadcast::ByteWriter writer;
  writer.PutVarint(retry.request_id);
  writer.PutVarint(retry.delay_ms);
  return writer.bytes();
}

bool DecodeRetryAfter(std::span<const uint8_t> payload, RetryAfter* out) {
  broadcast::ByteReader reader(payload.data(), payload.size());
  out->request_id = reader.GetVarint();
  const uint64_t delay = reader.GetVarint();
  if (!Consumed(reader) || delay > UINT32_MAX) return false;
  out->delay_ms = static_cast<uint32_t>(delay);
  return true;
}

std::vector<uint8_t> EncodeErrorReply(const ErrorReply& error) {
  broadcast::ByteWriter writer;
  writer.PutVarint(static_cast<uint64_t>(error.code));
  writer.PutVarint(error.message.size());
  writer.PutBytes(reinterpret_cast<const uint8_t*>(error.message.data()),
                  error.message.size());
  return writer.bytes();
}

bool DecodeErrorReply(std::span<const uint8_t> payload, ErrorReply* out) {
  broadcast::ByteReader reader(payload.data(), payload.size());
  const uint64_t code = reader.GetVarint();
  const uint64_t length = reader.GetVarint();
  if (!reader.ok() || code > UINT32_MAX) return false;
  if (length > kMaxErrorMessageBytes || length > reader.remaining()) {
    return false;
  }
  out->code = static_cast<ErrorCode>(code);
  out->message.clear();
  out->message.reserve(length);
  for (uint64_t i = 0; i < length; ++i) {
    out->message.push_back(static_cast<char>(reader.GetU8()));
  }
  return Consumed(reader);
}

std::vector<uint8_t> EncodeIndexData(
    uint32_t shard, const std::vector<broadcast::AirIndex::Entry>& entries,
    uint64_t epoch) {
  broadcast::ByteWriter writer;
  writer.PutVarint(shard);
  const std::vector<uint8_t> segment =
      broadcast::EncodeIndexSegmentFramed(entries, epoch);
  writer.PutBytes(segment.data(), segment.size());
  return writer.bytes();
}

bool DecodeIndexData(std::span<const uint8_t> payload, uint32_t* shard,
                     std::vector<broadcast::AirIndex::Entry>* entries,
                     uint64_t* epoch) {
  broadcast::ByteReader reader(payload.data(), payload.size());
  const uint64_t shard_value = reader.GetVarint();
  if (!reader.ok() || shard_value > UINT32_MAX) return false;
  *shard = static_cast<uint32_t>(shard_value);
  const size_t offset = payload.size() - reader.remaining();
  return broadcast::DecodeIndexSegmentFramed(payload.data() + offset,
                                             payload.size() - offset, entries,
                                             epoch);
}

std::vector<uint8_t> EncodeBucketData(uint32_t shard,
                                      const broadcast::DataBucket& bucket) {
  broadcast::ByteWriter writer;
  writer.PutVarint(shard);
  const std::vector<uint8_t> framed = broadcast::EncodeBucketFramed(bucket);
  writer.PutBytes(framed.data(), framed.size());
  return writer.bytes();
}

bool DecodeBucketData(std::span<const uint8_t> payload, uint32_t* shard,
                      broadcast::DataBucket* bucket) {
  broadcast::ByteReader reader(payload.data(), payload.size());
  const uint64_t shard_value = reader.GetVarint();
  if (!reader.ok() || shard_value > UINT32_MAX) return false;
  *shard = static_cast<uint32_t>(shard_value);
  const size_t offset = payload.size() - reader.remaining();
  return broadcast::DecodeBucketFramed(payload.data() + offset,
                                       payload.size() - offset, bucket);
}

QueryAnswer BuildAnswer(const QueryCall& call,
                        const core::QueryOutcome& outcome) {
  QueryAnswer answer;
  answer.request_id = call.request_id;
  answer.kind = call.kind;
  answer.epoch = outcome.Cacheable().epoch;
  if (call.kind == core::QueryKind::kKnn) {
    answer.neighbor_ids.reserve(outcome.knn->neighbors.size());
    answer.neighbor_distances.reserve(outcome.knn->neighbors.size());
    for (const spatial::PoiDistance& n : outcome.knn->neighbors) {
      answer.neighbor_ids.push_back(n.poi.id);
      answer.neighbor_distances.push_back(n.distance);
    }
  } else {
    answer.poi_ids.reserve(outcome.window->pois.size());
    for (const spatial::Poi& p : outcome.window->pois) {
      answer.poi_ids.push_back(p.id);
    }
  }
  const broadcast::AccessStats& stats = outcome.Stats();
  answer.access_latency = stats.access_latency;
  answer.tuning_time = stats.tuning_time;
  answer.buckets_read = stats.buckets_read;
  return answer;
}

}  // namespace lbsq::server
