#include "server/session.h"

#include <algorithm>

#include "broadcast/system.h"

namespace lbsq::server {

void ServerCounters::ExportTo(MetricsRegistry* registry) const {
  registry->IncrementCounter("server.sessions_opened",
                             sessions_opened.load(std::memory_order_relaxed));
  registry->IncrementCounter("server.sessions_closed",
                             sessions_closed.load(std::memory_order_relaxed));
  registry->IncrementCounter("server.frames_received",
                             frames_received.load(std::memory_order_relaxed));
  registry->IncrementCounter("server.frames_sent",
                             frames_sent.load(std::memory_order_relaxed));
  registry->IncrementCounter("server.bytes_received",
                             bytes_received.load(std::memory_order_relaxed));
  registry->IncrementCounter("server.bytes_sent",
                             bytes_sent.load(std::memory_order_relaxed));
  registry->IncrementCounter("server.queries_executed",
                             queries_executed.load(std::memory_order_relaxed));
  registry->IncrementCounter("server.index_probes",
                             index_probes.load(std::memory_order_relaxed));
  registry->IncrementCounter("server.buckets_served",
                             buckets_served.load(std::memory_order_relaxed));
  registry->IncrementCounter("server.retry_after_sent",
                             retry_after_sent.load(std::memory_order_relaxed));
  registry->IncrementCounter("server.protocol_errors",
                             protocol_errors.load(std::memory_order_relaxed));
}

void Session::Fail(ErrorCode code, const char* message,
                   std::vector<uint8_t>* out, FrameResult* result) {
  ErrorReply error;
  error.code = code;
  error.message = message;
  AppendFrame(FrameType::kError, EncodeErrorReply(error), out);
  context_.counters->frames_sent.fetch_add(1, std::memory_order_relaxed);
  context_.counters->protocol_errors.fetch_add(1, std::memory_order_relaxed);
  state_ = State::kClosed;
  result->close = true;
}

FrameResult Session::OnFrame(const Frame& frame, std::vector<uint8_t>* out) {
  FrameResult result;
  context_.counters->frames_received.fetch_add(1, std::memory_order_relaxed);
  if (state_ == State::kClosed) {
    result.close = true;
    return result;
  }

  if (state_ == State::kAwaitHello) {
    if (frame.type != FrameType::kHello) {
      Fail(ErrorCode::kBadState, "expected HELLO", out, &result);
      return result;
    }
    HelloRequest hello;
    if (!DecodeHello(frame.payload, &hello)) {
      Fail(ErrorCode::kBadMagic, "malformed HELLO", out, &result);
      return result;
    }
    const uint32_t lo = std::max(hello.min_version, kProtocolVersionMin);
    const uint32_t hi = std::min(hello.max_version, kProtocolVersionMax);
    if (lo > hi) {
      Fail(ErrorCode::kVersionMismatch, "no common protocol version", out,
           &result);
      return result;
    }
    version_ = hi;
    HelloAck ack;
    ack.version = version_;
    ack.num_shards = static_cast<uint32_t>(context_.engine->num_shards());
    // v1 predates epochs: it serves epoch-free wire frames, so advertise
    // epoch 0 rather than a value the session cannot express.
    ack.epoch = version_ >= 2 ? context_.epoch : 0;
    ack.poi_count = context_.engine->total_pois();
    ack.world = context_.engine->world();
    AppendFrame(FrameType::kHelloAck, EncodeHelloAck(ack), out);
    context_.counters->frames_sent.fetch_add(1, std::memory_order_relaxed);
    state_ = State::kReady;
    return result;
  }

  // kReady.
  switch (frame.type) {
    case FrameType::kHello:
      Fail(ErrorCode::kBadState, "duplicate HELLO", out, &result);
      return result;

    case FrameType::kIndexProbe: {
      IndexProbe probe;
      if (!DecodeIndexProbe(frame.payload, &probe)) {
        Fail(ErrorCode::kMalformedPayload, "malformed INDEX_PROBE", out,
             &result);
        return result;
      }
      if (probe.shard >= static_cast<uint32_t>(context_.engine->num_shards())) {
        Fail(ErrorCode::kBadShard, "shard out of range", out, &result);
        return result;
      }
      const broadcast::BroadcastSystem* system =
          context_.engine->shard_system(static_cast<int>(probe.shard));
      static const std::vector<broadcast::AirIndex::Entry> kEmptyDirectory;
      const std::vector<broadcast::AirIndex::Entry>& entries =
          system != nullptr ? system->index().entries() : kEmptyDirectory;
      const uint64_t epoch =
          version_ >= 2 && system != nullptr ? system->epoch() : 0;
      AppendFrame(FrameType::kIndexData,
                  EncodeIndexData(probe.shard, entries, epoch), out);
      context_.counters->frames_sent.fetch_add(1, std::memory_order_relaxed);
      context_.counters->index_probes.fetch_add(1, std::memory_order_relaxed);
      return result;
    }

    case FrameType::kBucketGet: {
      BucketGet get;
      if (!DecodeBucketGet(frame.payload, &get)) {
        Fail(ErrorCode::kMalformedPayload, "malformed BUCKET_GET", out,
             &result);
        return result;
      }
      if (get.shard >= static_cast<uint32_t>(context_.engine->num_shards())) {
        Fail(ErrorCode::kBadShard, "shard out of range", out, &result);
        return result;
      }
      const broadcast::BroadcastSystem* system =
          context_.engine->shard_system(static_cast<int>(get.shard));
      if (system == nullptr || get.bucket >= system->buckets().size()) {
        Fail(ErrorCode::kBadBucket, "bucket out of range", out, &result);
        return result;
      }
      broadcast::DataBucket bucket =
          system->buckets()[static_cast<size_t>(get.bucket)];
      // v1 sessions get epoch-free (wire v1) frames regardless of the
      // channel's stamp, mirroring the broadcast wire's legacy format.
      if (version_ < 2) bucket.epoch = 0;
      AppendFrame(FrameType::kBucketData, EncodeBucketData(get.shard, bucket),
                  out);
      context_.counters->frames_sent.fetch_add(1, std::memory_order_relaxed);
      context_.counters->buckets_served.fetch_add(1,
                                                  std::memory_order_relaxed);
      return result;
    }

    case FrameType::kQuery: {
      QueryCall call;
      if (!DecodeQueryCall(frame.payload, &call)) {
        Fail(ErrorCode::kMalformedPayload, "malformed QUERY", out, &result);
        return result;
      }
      result.queries.push_back(call);
      return result;
    }

    case FrameType::kBye:
      state_ = State::kClosed;
      result.close = true;
      return result;

    default:
      Fail(ErrorCode::kBadState, "unexpected frame type", out, &result);
      return result;
  }
}

}  // namespace lbsq::server
