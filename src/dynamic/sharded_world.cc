#include "dynamic/sharded_world.h"

#include <utility>

#include "common/check.h"
#include "storage/system_builder.h"

namespace lbsq::dynamic {

ShardedWorld::ShardedWorld(std::vector<spatial::Poi> initial,
                           const geom::Rect& world,
                           const broadcast::BroadcastParams& params,
                           const core::EngineOptions& options, int num_shards)
    : world_(world), params_(params), options_(options) {
  auto epoch = std::make_shared<ShardedEpoch>();
  epoch->id = 0;
  epoch->pois = initial;
  broadcast::BroadcastParams epoch_params = params_;
  epoch_params.epoch = 0;
  epoch->engine = std::make_unique<core::ShardedQueryEngine>(
      std::move(initial), world_, epoch_params, options_, num_shards);
  num_shards_ = epoch->engine->num_shards();
  for (int s = 0; s < num_shards_; ++s) {
    if (epoch->engine->shard_system(s) != nullptr) {
      epoch->rebuilt_shards.push_back(s);
    }
  }
  current_ = std::move(epoch);
}

std::shared_ptr<const ShardedEpoch> ShardedWorld::Current() const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return current_;
}

uint64_t ShardedWorld::latest_epoch() const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return current_->id;
}

int ShardedWorld::ShardOf(const core::ShardedQueryEngine& engine,
                          geom::Point p) const {
  return engine.map().ShardOfIndex(engine.routing_grid().IndexOf(p));
}

uint64_t ShardedWorld::Apply(std::vector<PoiUpdate> updates) {
  std::lock_guard<std::mutex> build_lock(build_mutex_);
  const std::shared_ptr<const ShardedEpoch> base = Current();
  const core::ShardedQueryEngine& base_engine = *base->engine;

  // The global mirror advances exactly like the unsharded world: same
  // merge, same invalid-update filtering, same logged batch.
  std::vector<spatial::Poi> pois = base->pois;
  ApplyUpdates(&updates, &pois);
  const uint64_t id = base->id + 1;

  // The net base-relative delta drives per-shard patching; the raw update
  // footprints below still drive the dirty-shard set (a shard a POI merely
  // passed through mid-batch stays clean under netting, but an update that
  // nets to nothing never dirties anything either way).
  const broadcast::SystemDelta delta = DeltaFromBatch(updates);
  const size_t base_n = base->pois.size();
  const bool try_patch =
      !policy_.force_full && base_n > 0 &&
      static_cast<double>(delta.size()) <=
          policy_.full_rebuild_churn_fraction * static_cast<double>(base_n);

  // An update dirties the shard(s) owning its footprint: where the POI
  // lands (insert, move-to) and where it departed from (delete, move-from).
  std::vector<bool> dirty(static_cast<size_t>(num_shards_), false);
  for (const PoiUpdate& u : updates) {
    switch (u.kind) {
      case PoiUpdate::Kind::kInsert:
        dirty[static_cast<size_t>(ShardOf(base_engine, u.pos))] = true;
        break;
      case PoiUpdate::Kind::kDelete:
        dirty[static_cast<size_t>(ShardOf(base_engine, u.old_pos))] = true;
        break;
      case PoiUpdate::Kind::kMove:
        dirty[static_cast<size_t>(ShardOf(base_engine, u.old_pos))] = true;
        dirty[static_cast<size_t>(ShardOf(base_engine, u.pos))] = true;
        break;
    }
  }

  // Refilter the mirror for the dirty shards only (one linear pass — the
  // same order-preserving filter the from-scratch constructor applies, so
  // a rebuilt shard's system is byte-identical to a cold build at this
  // epoch); every clean shard shares its system with the base epoch.
  std::vector<std::vector<spatial::Poi>> shard_pois(
      static_cast<size_t>(num_shards_));
  for (const spatial::Poi& p : pois) {
    const size_t s = static_cast<size_t>(ShardOf(base_engine, p.pos));
    if (dirty[s]) shard_pois[s].push_back(p);
  }

  // Partition the net delta by the fixed shard map, the same way POIs are
  // routed: a removal belongs to the shard that owned the POI's base
  // position, an addition to the shard owning its final one.
  std::vector<broadcast::SystemDelta> shard_deltas(
      static_cast<size_t>(num_shards_));
  if (try_patch) {
    for (const broadcast::PoiRemoval& r : delta.removals) {
      shard_deltas[static_cast<size_t>(ShardOf(base_engine, r.pos))]
          .removals.push_back(r);
    }
    for (const spatial::Poi& p : delta.additions) {
      shard_deltas[static_cast<size_t>(ShardOf(base_engine, p.pos))]
          .additions.push_back(p);
    }
  }

  broadcast::BroadcastParams epoch_params = params_;
  epoch_params.epoch = id;
  std::vector<std::shared_ptr<const broadcast::BroadcastSystem>> systems(
      static_cast<size_t>(num_shards_));
  std::vector<int> rebuilt;
  PublicationStats stats;
  stats.epochs_published = 1;
  for (int s = 0; s < num_shards_; ++s) {
    const size_t si = static_cast<size_t>(s);
    if (!dirty[si]) {
      systems[si] = base_engine.shard_system_ptr(s);
      continue;
    }
    rebuilt.push_back(s);
    if (shard_pois[si].empty()) continue;
    if (try_patch && base_engine.shard_system(s) != nullptr) {
      broadcast::PatchStats patch_stats;
      // The attempt copies the shard's POIs so a decline can still feed the
      // full build below.
      std::unique_ptr<broadcast::BroadcastSystem> patched =
          broadcast::BroadcastSystem::PatchFrom(
              *base_engine.shard_system(s), shard_pois[si], shard_deltas[si],
              epoch_params, &patch_stats);
      if (patched != nullptr) {
        stats.buckets_patched += patch_stats.buckets_patched;
        stats.buckets_shared += patch_stats.buckets_shared;
        systems[si] = std::move(patched);
        continue;
      }
    }
    if (!policy_.force_full) ++stats.full_rebuild_fallbacks;
    systems[si] = storage::SystemBuilder(world_, epoch_params)
                      .BuildSystemFromPois(std::move(shard_pois[si]));
  }
  // The epoch counts as patched when every republished shard came through
  // the incremental path.
  if (stats.full_rebuild_fallbacks == 0 && !policy_.force_full &&
      !rebuilt.empty()) {
    stats.epochs_patched = 1;
  }

  auto next = std::make_shared<ShardedEpoch>();
  next->id = id;
  next->pois = std::move(pois);
  next->engine = std::make_unique<core::ShardedQueryEngine>(
      world_, epoch_params, options_, base_engine.map(), std::move(systems));
  next->rebuilt_shards = std::move(rebuilt);

  const int64_t applied = static_cast<int64_t>(updates.size());
  const int64_t rebuilds = static_cast<int64_t>(next->rebuilt_shards.size());
  stats.shards_rebuilt = rebuilds;
  UpdateBatch batch{id, std::move(updates)};
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    LBSQ_CHECK(next->id == current_->id + 1);
    current_ = std::move(next);
    log_.Append(std::move(batch));
    updates_applied_ += applied;
    shards_rebuilt_ += rebuilds;
    stats_.MergeFrom(stats);
  }
  return id;
}

bool ShardedWorld::RegionDirty(const geom::Rect& rect, uint64_t from_exclusive,
                               uint64_t to_inclusive) const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return log_.RegionDirtyBetween(rect, from_exclusive, to_inclusive);
}

int64_t ShardedWorld::updates_applied() const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return updates_applied_;
}

int64_t ShardedWorld::shards_rebuilt() const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return shards_rebuilt_;
}

PublicationStats ShardedWorld::publication_stats() const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return stats_;
}

std::shared_ptr<const ShardedEpoch> ShardedWorld::Execute(
    const core::QueryRequest& request, std::vector<core::PeerData>* peers,
    core::ShardedQueryWorkspace& workspace, core::QueryOutcome* outcome,
    RevalidationStats* stats) const {
  LBSQ_CHECK(outcome != nullptr);
  // Peer knowledge must ride in through `peers` so revalidation can edit it.
  LBSQ_CHECK(request.peers.empty());
  std::shared_ptr<const ShardedEpoch> pinned = Current();
  core::QueryRequest exec = request;
  if (peers != nullptr) {
    auto log_dirty = [this](const geom::Rect& rect, uint64_t lo, uint64_t hi) {
      return RegionDirty(rect, lo, hi);
    };
    const RevalidationStats pass =
        RevalidatePeerDataWith(log_dirty, pinned->id, peers);
    if (stats != nullptr) {
      stats->revalidated += pass.revalidated;
      stats->rejected += pass.rejected;
    }
    exec.peers = *peers;
  }
  pinned->engine->Execute(exec, workspace, outcome);
  // Clean shards still carry the epoch stamp of their last rebuild; the
  // knowledge this query verified is consistent with the *global* pinned
  // epoch, and the global log is what future revalidation consults.
  outcome->Cacheable().epoch = pinned->id;
  return pinned;
}

}  // namespace lbsq::dynamic
