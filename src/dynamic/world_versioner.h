#ifndef LBSQ_DYNAMIC_WORLD_VERSIONER_H_
#define LBSQ_DYNAMIC_WORLD_VERSIONER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "broadcast/system.h"
#include "core/query_engine.h"
#include "dynamic/rebuild_policy.h"
#include "dynamic/update_log.h"
#include "geom/rect.h"
#include "spatial/poi.h"

/// \file
/// Epoch versioning of the broadcast world (MVCC-lite, in the spirit of
/// memtx snapshot reads): the POI database is mutable through
/// insert/delete/move batches, but every published *epoch* — the POI
/// snapshot plus the `(1, m)` broadcast system and query engine built from
/// it — is immutable forever. Queries pin the epoch they start on via a
/// shared_ptr and execute against a frozen, consistent world no matter how
/// many batches land meanwhile; an epoch's storage is reclaimed when the
/// last pin drops (unless history retention is on).
///
/// Rebuilds are incremental at the data-file level: a batch is applied to
/// the previous epoch's POI snapshot in one linear merge pass (O(n + b))
/// that preserves generation order, and bucketization/air-index
/// construction runs over the result. The rebuild can run synchronously
/// (`Apply`, the deterministic path the simulators drive) or on the
/// builder thread (`StartBuilder` + `EnqueueBatch`), which publishes new
/// epochs while query threads keep executing against their pins — the
/// concurrency contract tests/dynamic_world_test.cc holds under TSan.

namespace lbsq::dynamic {

/// One immutable published world version. `pois` is the ground truth the
/// per-epoch oracles evaluate against (generation order, exactly like the
/// static world's database); `system`/`engine` are the broadcast channel
/// and query facade built from it, with `system->epoch() == id`.
struct WorldEpoch {
  uint64_t id = 0;
  std::vector<spatial::Poi> pois;
  std::unique_ptr<broadcast::BroadcastSystem> system;
  std::unique_ptr<core::QueryEngine> engine;
};

/// Accepts update batches and publishes epochs. Thread-safe: `Current`,
/// `RegionDirty`, and the wait/observer accessors may be called from any
/// thread concurrently with a rebuild. Producers must be serialized —
/// either call `Apply` from one thread at a time, or run the builder
/// thread and feed it through `EnqueueBatch` (do not mix the two).
class WorldVersioner {
 public:
  /// Builds and publishes epoch 0 from `initial` (passed through to the
  /// BroadcastSystem verbatim — a zero-update versioner is indistinguishable
  /// from constructing the system/engine directly). `retain_history` keeps
  /// every published epoch alive for `EpochAt` (per-epoch oracles and cache
  /// invariant checks); off, superseded epochs die with their last pin.
  WorldVersioner(std::vector<spatial::Poi> initial, const geom::Rect& world,
                 const broadcast::BroadcastParams& params,
                 const core::EngineOptions& options,
                 bool retain_history = false);

  /// Stops the builder thread if running.
  ~WorldVersioner();

  WorldVersioner(const WorldVersioner&) = delete;
  WorldVersioner& operator=(const WorldVersioner&) = delete;

  /// Pins and returns the newest published epoch.
  std::shared_ptr<const WorldEpoch> Current() const;

  /// The retained epoch `id` (requires retain_history or id == current);
  /// null when it was not retained.
  std::shared_ptr<const WorldEpoch> EpochAt(uint64_t id) const;

  /// Id of the newest published epoch.
  uint64_t latest_epoch() const;

  /// Applies one batch synchronously: merges it into the previous snapshot,
  /// rebuilds the broadcast system and engine, publishes the next epoch,
  /// and appends the applied batch to the log. Returns the new epoch id.
  uint64_t Apply(std::vector<PoiUpdate> updates);

  /// UpdateLog::RegionDirtyBetween under the versioner's lock.
  bool RegionDirty(const geom::Rect& rect, uint64_t from_exclusive,
                   uint64_t to_inclusive) const;

  /// Updates applied across all published epochs (skipped-invalid excluded).
  int64_t updates_applied() const;

  /// Sets the publication policy (incremental patch vs. full rebuild). Set
  /// it before the first Apply/EnqueueBatch; it is read by rebuilds without
  /// further synchronization.
  void set_rebuild_policy(const RebuildPolicy& policy) { policy_ = policy; }
  const RebuildPolicy& rebuild_policy() const { return policy_; }

  /// What the publication path did so far (patched vs. fallback counts).
  PublicationStats publication_stats() const;

  /// Starts the builder thread (idempotent).
  void StartBuilder();
  /// Drains the queue, then stops and joins the builder (idempotent).
  void StopBuilder();
  /// Hands a batch to the builder thread (requires StartBuilder).
  void EnqueueBatch(std::vector<PoiUpdate> updates);
  /// Blocks until epoch `id` (or newer) is published.
  void WaitForEpoch(uint64_t id) const;

 private:
  /// Builds the epoch succeeding `base` with `updates` applied — through
  /// the incremental patch when the policy and churn allow, else a full
  /// rebuild (counted into `*stats`). Pure; runs outside state_mutex_ so
  /// pinned readers never wait on a rebuild.
  std::shared_ptr<const WorldEpoch> BuildNext(const WorldEpoch& base,
                                              std::vector<PoiUpdate>* updates,
                                              PublicationStats* stats) const;

  /// Publishes `next`, logging `batch` and folding `stats` in (state_mutex_
  /// taken inside).
  void Publish(std::shared_ptr<const WorldEpoch> next, UpdateBatch batch,
               int64_t applied, const PublicationStats& stats);

  void BuilderLoop();

  geom::Rect world_;
  broadcast::BroadcastParams params_;
  core::EngineOptions options_;
  bool retain_history_;
  RebuildPolicy policy_;

  mutable std::mutex state_mutex_;
  mutable std::condition_variable published_cv_;
  std::shared_ptr<const WorldEpoch> current_;
  std::vector<std::shared_ptr<const WorldEpoch>> history_;
  UpdateLog log_;
  int64_t updates_applied_ = 0;
  PublicationStats stats_;

  // Producer side: serializes Apply against the builder thread's rebuilds.
  std::mutex build_mutex_;
  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<std::vector<PoiUpdate>> queue_;
  bool stop_builder_ = false;
  std::thread builder_;
};

}  // namespace lbsq::dynamic

#endif  // LBSQ_DYNAMIC_WORLD_VERSIONER_H_
