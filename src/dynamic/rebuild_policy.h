#ifndef LBSQ_DYNAMIC_REBUILD_POLICY_H_
#define LBSQ_DYNAMIC_REBUILD_POLICY_H_

#include <cstdint>

#include "common/metrics_registry.h"

/// \file
/// Publication-path policy and counters of the dynamic world: whether an
/// epoch is published by patching the previous broadcast system in place
/// (the diff-aware incremental path) or by a cold full rebuild, and the
/// running tally of what actually happened — every fallback is counted,
/// never silent.

namespace lbsq::dynamic {

/// Chooses between the incremental patch and a full rebuild per epoch.
struct RebuildPolicy {
  /// Always full-rebuild (the pre-incremental behavior; also the reference
  /// side of the incremental-vs-full CI diff).
  bool force_full = false;
  /// Heuristic fallback: when the net delta touches more than this fraction
  /// of the base POI set, a full rebuild is cheaper than patching (most
  /// buckets would be dirty anyway) — fall back and count it.
  double full_rebuild_churn_fraction = 0.25;
};

/// What the publication path did, accumulated across epochs. Guarded by the
/// owning world's state mutex; snapshot via the owner's accessor.
struct PublicationStats {
  /// Epochs published (excluding the initial epoch 0).
  int64_t epochs_published = 0;
  /// Epochs published through the incremental patch path.
  int64_t epochs_patched = 0;
  /// Shard systems rebuilt or patched (== epochs for the single-shard
  /// versioner; per dirty shard for ShardedWorld).
  int64_t shards_rebuilt = 0;
  /// Data buckets rebucketized by patches / copied verbatim from the base.
  int64_t buckets_patched = 0;
  int64_t buckets_shared = 0;
  /// Full rebuilds taken although incremental was requested: churn over
  /// threshold, or the patch declining structurally. force_full publications
  /// are not fallbacks and are not counted here.
  int64_t full_rebuild_fallbacks = 0;

  void MergeFrom(const PublicationStats& other) {
    epochs_published += other.epochs_published;
    epochs_patched += other.epochs_patched;
    shards_rebuilt += other.shards_rebuilt;
    buckets_patched += other.buckets_patched;
    buckets_shared += other.buckets_shared;
    full_rebuild_fallbacks += other.full_rebuild_fallbacks;
  }

  /// Publishes the tallies as `dynamic.*` counters. Callers gate this on
  /// updates being enabled so static-world runs export no dynamic metrics.
  void ExportTo(MetricsRegistry* registry) const {
    registry->IncrementCounter("dynamic.epochs_published", epochs_published);
    registry->IncrementCounter("dynamic.epochs_patched", epochs_patched);
    registry->IncrementCounter("dynamic.shards_rebuilt", shards_rebuilt);
    registry->IncrementCounter("dynamic.buckets_patched", buckets_patched);
    registry->IncrementCounter("dynamic.buckets_shared", buckets_shared);
    registry->IncrementCounter("dynamic.full_rebuild_fallbacks",
                               full_rebuild_fallbacks);
  }
};

}  // namespace lbsq::dynamic

#endif  // LBSQ_DYNAMIC_REBUILD_POLICY_H_
