#include "dynamic/dynamic_engine.h"

#include <algorithm>

#include "common/check.h"

namespace lbsq::dynamic {

RevalidationStats RevalidatePeerData(const WorldVersioner& versioner,
                                     uint64_t pinned_epoch,
                                     core::PeerData* peer) {
  RevalidationStats stats;
  auto stale = [&](core::VerifiedRegion& vr) {
    if (vr.epoch == pinned_epoch) return false;
    const uint64_t lo = std::min(vr.epoch, pinned_epoch);
    const uint64_t hi = std::max(vr.epoch, pinned_epoch);
    if (versioner.RegionDirty(vr.region, lo, hi)) {
      ++stats.rejected;
      return true;
    }
    vr.epoch = pinned_epoch;
    ++stats.revalidated;
    return false;
  };
  std::erase_if(peer->regions, stale);
  return stats;
}

RevalidationStats RevalidatePeerData(const WorldVersioner& versioner,
                                     uint64_t pinned_epoch,
                                     std::vector<core::PeerData>* peers) {
  RevalidationStats stats;
  for (core::PeerData& peer : *peers) {
    const RevalidationStats one =
        RevalidatePeerData(versioner, pinned_epoch, &peer);
    stats.revalidated += one.revalidated;
    stats.rejected += one.rejected;
  }
  return stats;
}

std::shared_ptr<const WorldEpoch> DynamicQueryEngine::Execute(
    core::QueryRequest* request, core::QueryWorkspace& workspace,
    core::QueryOutcome* outcome, RevalidationStats* stats) const {
  LBSQ_CHECK(request != nullptr && outcome != nullptr);
  std::shared_ptr<const WorldEpoch> pinned = versioner_.Current();
  const RevalidationStats pass =
      RevalidatePeerData(versioner_, pinned->id, &request->peers);
  if (stats != nullptr) {
    stats->revalidated += pass.revalidated;
    stats->rejected += pass.rejected;
  }
  pinned->engine->Execute(*request, workspace, outcome);
  return pinned;
}

}  // namespace lbsq::dynamic
