#include "dynamic/dynamic_engine.h"

#include <algorithm>

#include "common/check.h"

namespace lbsq::dynamic {

namespace {

auto VersionerDirty(const WorldVersioner& versioner) {
  return [&versioner](const geom::Rect& rect, uint64_t lo, uint64_t hi) {
    return versioner.RegionDirty(rect, lo, hi);
  };
}

}  // namespace

RevalidationStats RevalidatePeerData(const WorldVersioner& versioner,
                                     uint64_t pinned_epoch,
                                     core::PeerData* peer) {
  return RevalidatePeerDataWith(VersionerDirty(versioner), pinned_epoch, peer);
}

RevalidationStats RevalidatePeerData(const WorldVersioner& versioner,
                                     uint64_t pinned_epoch,
                                     std::vector<core::PeerData>* peers) {
  return RevalidatePeerDataWith(VersionerDirty(versioner), pinned_epoch,
                                peers);
}

std::shared_ptr<const WorldEpoch> DynamicQueryEngine::Execute(
    const core::QueryRequest& request, std::vector<core::PeerData>* peers,
    core::QueryWorkspace& workspace, core::QueryOutcome* outcome,
    RevalidationStats* stats) const {
  LBSQ_CHECK(outcome != nullptr);
  // Peer knowledge must ride in through `peers` so revalidation can edit it.
  LBSQ_CHECK(request.peers.empty());
  std::shared_ptr<const WorldEpoch> pinned = versioner_.Current();
  core::QueryRequest exec = request;
  if (peers != nullptr) {
    const RevalidationStats pass =
        RevalidatePeerData(versioner_, pinned->id, peers);
    if (stats != nullptr) {
      stats->revalidated += pass.revalidated;
      stats->rejected += pass.rejected;
    }
    exec.peers = *peers;
  }
  pinned->engine->Execute(exec, workspace, outcome);
  return pinned;
}

}  // namespace lbsq::dynamic
