#include "dynamic/update_log.h"

#include <unordered_map>

#include "common/check.h"

namespace lbsq::dynamic {

int64_t ApplyUpdates(std::vector<PoiUpdate>* updates,
                     std::vector<spatial::Poi>* pois) {
  LBSQ_CHECK(updates != nullptr && pois != nullptr);
  std::unordered_map<int64_t, size_t> index;
  index.reserve(pois->size());
  for (size_t i = 0; i < pois->size(); ++i) index.emplace((*pois)[i].id, i);

  // Deletes are recorded as tombstones and compacted in one pass at the end
  // so earlier updates never shift the indices later ones resolved.
  std::vector<bool> dead(pois->size(), false);
  size_t kept_updates = 0;
  for (PoiUpdate& update : *updates) {
    const auto it = index.find(update.id);
    const bool live = it != index.end() && !dead[it->second];
    bool applied = false;
    switch (update.kind) {
      case PoiUpdate::Kind::kInsert:
        if (live) break;  // id already taken
        index[update.id] = pois->size();
        dead.push_back(false);
        pois->push_back(spatial::Poi{update.id, update.pos});
        applied = true;
        break;
      case PoiUpdate::Kind::kDelete:
        if (!live) break;
        update.old_pos = (*pois)[it->second].pos;
        dead[it->second] = true;
        applied = true;
        break;
      case PoiUpdate::Kind::kMove:
        if (!live) break;
        update.old_pos = (*pois)[it->second].pos;
        (*pois)[it->second].pos = update.pos;
        applied = true;
        break;
    }
    if (applied) (*updates)[kept_updates++] = update;
  }
  updates->resize(kept_updates);
  size_t keep = 0;
  for (size_t i = 0; i < pois->size(); ++i) {
    if (!dead[i]) (*pois)[keep++] = (*pois)[i];
  }
  pois->resize(keep);
  return static_cast<int64_t>(kept_updates);
}

void UpdateLog::Append(UpdateBatch batch) {
  LBSQ_CHECK(batch.epoch == latest_epoch() + 1);
  batches_.push_back(std::move(batch));
}

bool UpdateLog::RegionDirtyBetween(const geom::Rect& rect,
                                   uint64_t from_exclusive,
                                   uint64_t to_inclusive) const {
  for (const UpdateBatch& batch : batches_) {
    if (batch.epoch <= from_exclusive) continue;
    if (batch.epoch > to_inclusive) break;  // batches are epoch-ordered
    for (const PoiUpdate& update : batch.updates) {
      switch (update.kind) {
        case PoiUpdate::Kind::kInsert:
          if (rect.Contains(update.pos)) return true;
          break;
        case PoiUpdate::Kind::kDelete:
          if (rect.Contains(update.old_pos)) return true;
          break;
        case PoiUpdate::Kind::kMove:
          if (rect.Contains(update.old_pos) || rect.Contains(update.pos)) {
            return true;
          }
          break;
      }
    }
  }
  return false;
}

}  // namespace lbsq::dynamic
