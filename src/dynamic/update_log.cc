#include "dynamic/update_log.h"

#include <unordered_map>

#include "common/check.h"

namespace lbsq::dynamic {

int64_t ApplyUpdates(std::vector<PoiUpdate>* updates,
                     std::vector<spatial::Poi>* pois) {
  LBSQ_CHECK(updates != nullptr && pois != nullptr);
  std::unordered_map<int64_t, size_t> index;
  index.reserve(pois->size());
  for (size_t i = 0; i < pois->size(); ++i) index.emplace((*pois)[i].id, i);

  // Deletes are recorded as tombstones and compacted in one pass at the end
  // so earlier updates never shift the indices later ones resolved.
  std::vector<bool> dead(pois->size(), false);
  size_t kept_updates = 0;
  for (PoiUpdate& update : *updates) {
    const auto it = index.find(update.id);
    const bool live = it != index.end() && !dead[it->second];
    bool applied = false;
    switch (update.kind) {
      case PoiUpdate::Kind::kInsert:
        if (live) break;  // id already taken
        index[update.id] = pois->size();
        dead.push_back(false);
        pois->push_back(spatial::Poi{update.id, update.pos});
        applied = true;
        break;
      case PoiUpdate::Kind::kDelete:
        if (!live) break;
        update.old_pos = (*pois)[it->second].pos;
        dead[it->second] = true;
        applied = true;
        break;
      case PoiUpdate::Kind::kMove:
        if (!live) break;
        update.old_pos = (*pois)[it->second].pos;
        (*pois)[it->second].pos = update.pos;
        applied = true;
        break;
    }
    if (applied) (*updates)[kept_updates++] = update;
  }
  updates->resize(kept_updates);
  size_t keep = 0;
  for (size_t i = 0; i < pois->size(); ++i) {
    if (!dead[i]) (*pois)[keep++] = (*pois)[i];
  }
  pois->resize(keep);
  return static_cast<int64_t>(kept_updates);
}

broadcast::SystemDelta DeltaFromBatch(
    const std::vector<PoiUpdate>& updates) {
  // Per-id net effect, in first-touch order so the output is deterministic.
  // The batch is an *applied* one, so ops are individually valid: the first
  // delete/move of an id proves it lived in the base epoch at its old_pos;
  // a first-op insert proves it did not.
  struct NetState {
    int64_t id = -1;
    bool from_base = false;
    geom::Point base_pos;
    bool alive = false;
    geom::Point pos;
  };
  std::vector<NetState> states;
  std::unordered_map<int64_t, size_t> index;
  index.reserve(updates.size());
  for (const PoiUpdate& update : updates) {
    auto [it, fresh] = index.emplace(update.id, states.size());
    if (fresh) {
      NetState blank;
      blank.id = update.id;
      states.push_back(blank);
    }
    NetState& s = states[it->second];
    switch (update.kind) {
      case PoiUpdate::Kind::kInsert:
        if (fresh) s.from_base = false;
        s.alive = true;
        s.pos = update.pos;
        break;
      case PoiUpdate::Kind::kDelete:
        if (fresh) {
          s.from_base = true;
          s.base_pos = update.old_pos;
        }
        s.alive = false;
        break;
      case PoiUpdate::Kind::kMove:
        if (fresh) {
          s.from_base = true;
          s.base_pos = update.old_pos;
        }
        s.alive = true;
        s.pos = update.pos;
        break;
    }
  }
  broadcast::SystemDelta delta;
  for (const NetState& s : states) {
    if (s.from_base) {
      delta.removals.push_back(broadcast::PoiRemoval{s.base_pos, s.id});
    }
    if (s.alive) {
      delta.additions.push_back(spatial::Poi{s.id, s.pos});
    }
  }
  return delta;
}

void UpdateLog::Append(UpdateBatch batch) {
  LBSQ_CHECK(batch.epoch == latest_epoch() + 1);
  batches_.push_back(std::move(batch));
}

bool UpdateLog::RegionDirtyBetween(const geom::Rect& rect,
                                   uint64_t from_exclusive,
                                   uint64_t to_inclusive) const {
  for (const UpdateBatch& batch : batches_) {
    if (batch.epoch <= from_exclusive) continue;
    if (batch.epoch > to_inclusive) break;  // batches are epoch-ordered
    for (const PoiUpdate& update : batch.updates) {
      switch (update.kind) {
        case PoiUpdate::Kind::kInsert:
          if (rect.Contains(update.pos)) return true;
          break;
        case PoiUpdate::Kind::kDelete:
          if (rect.Contains(update.old_pos)) return true;
          break;
        case PoiUpdate::Kind::kMove:
          if (rect.Contains(update.old_pos) || rect.Contains(update.pos)) {
            return true;
          }
          break;
      }
    }
  }
  return false;
}

}  // namespace lbsq::dynamic
