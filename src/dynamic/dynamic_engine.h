#ifndef LBSQ_DYNAMIC_DYNAMIC_ENGINE_H_
#define LBSQ_DYNAMIC_DYNAMIC_ENGINE_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/query_engine.h"
#include "core/query_workspace.h"
#include "core/verified_region.h"
#include "dynamic/world_versioner.h"

/// \file
/// Snapshot-isolated query execution over a versioned world. Every Execute
/// pins the newest published epoch for its whole duration — the query sees
/// one consistent POI database, broadcast schedule, and air index even if
/// the builder publishes new epochs mid-flight — and peer data carried in
/// from other epochs is revalidated against the update log (retagged when
/// its region is untouched by the separating batches, rejected as stale
/// otherwise) before the underlying engine consumes it.

namespace lbsq::dynamic {

/// Accounting of one revalidation pass.
struct RevalidationStats {
  /// Cross-epoch regions proven still complete and retagged to the pin.
  int64_t revalidated = 0;
  /// Cross-epoch regions dropped because an update touched them.
  int64_t rejected = 0;
};

/// Revalidates every shared region in `peers` against `pinned_epoch`: a
/// region tagged with a different epoch is kept (and retagged) only when no
/// update in the separating batch interval touched it — otherwise its
/// completeness guarantee (Lemma 3.1's precondition) may be broken and it
/// is removed. Peers left empty are kept (harmless; matches GatherPeers'
/// non-empty filter semantics downstream).
RevalidationStats RevalidatePeerData(const WorldVersioner& versioner,
                                     uint64_t pinned_epoch,
                                     std::vector<core::PeerData>* peers);

/// Single-peer overload.
RevalidationStats RevalidatePeerData(const WorldVersioner& versioner,
                                     uint64_t pinned_epoch,
                                     core::PeerData* peer);

/// The revalidation core, parameterized over the dirtiness oracle so every
/// versioned world (single-channel WorldVersioner, multi-shard ShardedWorld)
/// shares one stale-region policy. `dirty(rect, from_exclusive,
/// to_inclusive)` must mirror UpdateLog::RegionDirtyBetween semantics.
template <typename DirtyFn>
RevalidationStats RevalidatePeerDataWith(const DirtyFn& dirty,
                                         uint64_t pinned_epoch,
                                         core::PeerData* peer) {
  RevalidationStats stats;
  auto stale = [&](core::VerifiedRegion& vr) {
    if (vr.epoch == pinned_epoch) return false;
    const uint64_t lo = std::min(vr.epoch, pinned_epoch);
    const uint64_t hi = std::max(vr.epoch, pinned_epoch);
    if (dirty(vr.region, lo, hi)) {
      ++stats.rejected;
      return true;
    }
    vr.epoch = pinned_epoch;
    ++stats.revalidated;
    return false;
  };
  std::erase_if(peer->regions, stale);
  return stats;
}

template <typename DirtyFn>
RevalidationStats RevalidatePeerDataWith(const DirtyFn& dirty,
                                         uint64_t pinned_epoch,
                                         std::vector<core::PeerData>* peers) {
  RevalidationStats stats;
  for (core::PeerData& peer : *peers) {
    const RevalidationStats one =
        RevalidatePeerDataWith(dirty, pinned_epoch, &peer);
    stats.revalidated += one.revalidated;
    stats.rejected += one.rejected;
  }
  return stats;
}

/// Query facade over a WorldVersioner (the dynamic-world counterpart of
/// core::QueryEngine). Stateless between calls and thread-safe: any number
/// of threads may Execute concurrently, each with its own workspace.
class DynamicQueryEngine {
 public:
  explicit DynamicQueryEngine(const WorldVersioner& versioner)
      : versioner_(versioner) {}

  /// Pins and returns the newest epoch (for callers that drive the epoch's
  /// QueryEngine directly, e.g. to oracle-check against epoch->pois).
  std::shared_ptr<const WorldEpoch> Pin() const { return versioner_.Current(); }

  /// Pins the current epoch, revalidates `peers` against it, and executes
  /// the request on the pinned epoch's engine through `workspace` (whose
  /// memo re-binds automatically on an epoch change).
  ///
  /// `peers` is the host's own mutable peer-knowledge snapshot — the one
  /// place dynamic execution edits: regions invalidated by the separating
  /// update batches are erased in place (the host discards knowledge it now
  /// knows is stale), and the query runs with the survivors as its peer
  /// span. May be null for a peerless query. `request.peers` must be empty;
  /// the span is bound here, after revalidation, so it can never dangle or
  /// reference pre-revalidation state. No per-query heap allocation: the
  /// in-place erase only releases memory.
  ///
  /// Returns the pinned epoch — the world the outcome is consistent with;
  /// its `pois` are the oracle snapshot for this answer. A non-null `stats`
  /// accumulates the revalidation counts.
  std::shared_ptr<const WorldEpoch> Execute(const core::QueryRequest& request,
                                            std::vector<core::PeerData>* peers,
                                            core::QueryWorkspace& workspace,
                                            core::QueryOutcome* outcome,
                                            RevalidationStats* stats =
                                                nullptr) const;

 private:
  const WorldVersioner& versioner_;
};

}  // namespace lbsq::dynamic

#endif  // LBSQ_DYNAMIC_DYNAMIC_ENGINE_H_
