#ifndef LBSQ_DYNAMIC_SHARDED_WORLD_H_
#define LBSQ_DYNAMIC_SHARDED_WORLD_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "broadcast/system.h"
#include "core/query_engine.h"
#include "core/sharded_query_engine.h"
#include "dynamic/dynamic_engine.h"
#include "dynamic/rebuild_policy.h"
#include "dynamic/update_log.h"
#include "geom/rect.h"
#include "spatial/poi.h"

/// \file
/// Epoch versioning of the *sharded* broadcast deployment — the dynamic
/// counterpart of `core::ShardedQueryEngine`, mirroring `WorldVersioner`'s
/// contract at metro scale. One global update stream advances one global
/// epoch sequence (the same `ApplyUpdates` merge as the unsharded world, on
/// the same global POI mirror, so the epoch ids, the applied-batch
/// filtering, and the update log are identical at any shard count), but
/// each batch rebuilds only the shards it touches: an update lands on the
/// shard(s) owning its old and new positions, and every other shard's
/// broadcast system is shared, untouched, with the previous epoch. A
/// thousand-batch churn over a metro deployment rebuilds each small dirty
/// slice instead of re-bucketizing the whole world N times.
///
/// The shard map is fixed at construction (from the initial occupancy):
/// repartitioning on churn would invalidate every channel at once and break
/// the clean-shard sharing that makes incremental publication cheap.
/// Occupancy drift under sustained one-sided churn is the operator's cue to
/// re-deploy, not the versioner's to rebalance silently.

namespace lbsq::dynamic {

/// One immutable published version of the sharded world.
struct ShardedEpoch {
  uint64_t id = 0;
  /// Global POI mirror in generation order — the oracle snapshot this
  /// epoch's answers are exact against (same content, same order, as the
  /// unsharded WorldEpoch's `pois` after the same batches).
  std::vector<spatial::Poi> pois;
  /// The multi-shard engine. Shards the publishing batch left untouched
  /// share their BroadcastSystem with the previous epoch; dirty shards
  /// carry freshly built ones stamped with this epoch's id.
  std::unique_ptr<core::ShardedQueryEngine> engine;
  /// The shards rebuilt to publish this epoch (all non-empty shards for
  /// epoch 0; the batch's dirty set afterwards). Diagnostics and tests.
  std::vector<int> rebuilt_shards;
};

/// Accepts update batches and publishes sharded epochs. Thread-safe on the
/// reader side (`Current`, `RegionDirty`, `Execute` from any thread);
/// producers must serialize their `Apply` calls.
class ShardedWorld {
 public:
  /// Builds and publishes epoch 0: partitions `initial` by occupancy into
  /// `num_shards` Hilbert ranges and builds every shard channel (see the
  /// ShardedQueryEngine constructor). A 1-shard ShardedWorld publishes
  /// byte-identical systems to an unsharded WorldVersioner fed the same
  /// batches.
  ShardedWorld(std::vector<spatial::Poi> initial, const geom::Rect& world,
               const broadcast::BroadcastParams& params,
               const core::EngineOptions& options, int num_shards);

  ShardedWorld(const ShardedWorld&) = delete;
  ShardedWorld& operator=(const ShardedWorld&) = delete;

  /// Pins and returns the newest published epoch.
  std::shared_ptr<const ShardedEpoch> Current() const;

  /// Id of the newest published epoch.
  uint64_t latest_epoch() const;

  /// Applies one batch synchronously: merges it into the global mirror
  /// (identical epoch sequence to the unsharded world), rebuilds the dirty
  /// shards only, publishes the next epoch, and logs the applied batch.
  /// Returns the new epoch id.
  uint64_t Apply(std::vector<PoiUpdate> updates);

  /// UpdateLog::RegionDirtyBetween over the global log (same answers as the
  /// unsharded versioner's — the log is shard-agnostic).
  bool RegionDirty(const geom::Rect& rect, uint64_t from_exclusive,
                   uint64_t to_inclusive) const;

  /// Updates applied across all published epochs (skipped-invalid excluded).
  int64_t updates_applied() const;

  /// Cumulative count of shard rebuilds across all Apply calls — the
  /// incremental-publication win is `epochs * num_shards` minus this.
  int64_t shards_rebuilt() const;

  /// Sets the publication policy (per-shard incremental patch vs. full
  /// rebuild). Set it before the first Apply; rebuilds read it without
  /// further synchronization.
  void set_rebuild_policy(const RebuildPolicy& policy) { policy_ = policy; }
  const RebuildPolicy& rebuild_policy() const { return policy_; }

  /// What the publication path did so far. `shards_rebuilt` here counts
  /// dirty-shard republications (patched or full); `full_rebuild_fallbacks`
  /// counts the ones that wanted to patch but full-built instead.
  PublicationStats publication_stats() const;

  int num_shards() const { return num_shards_; }
  const geom::Rect& world() const { return world_; }

  /// Pins the current epoch, revalidates `peers` against the global update
  /// log, and executes the request on the pinned epoch's sharded engine.
  /// Same contract as DynamicQueryEngine::Execute (peers edited in place,
  /// `request.peers` must be empty, no per-query heap allocation); the
  /// outcome's cacheable is stamped with the *global* pinned epoch, so
  /// cached knowledge revalidates against the shard-agnostic log no matter
  /// which shards produced it.
  std::shared_ptr<const ShardedEpoch> Execute(
      const core::QueryRequest& request, std::vector<core::PeerData>* peers,
      core::ShardedQueryWorkspace& workspace, core::QueryOutcome* outcome,
      RevalidationStats* stats = nullptr) const;

 private:
  /// The shard owning position `p` under the fixed map.
  int ShardOf(const core::ShardedQueryEngine& engine, geom::Point p) const;

  geom::Rect world_;
  broadcast::BroadcastParams params_;
  core::EngineOptions options_;
  int num_shards_ = 1;
  RebuildPolicy policy_;

  mutable std::mutex state_mutex_;
  std::shared_ptr<const ShardedEpoch> current_;
  UpdateLog log_;
  int64_t updates_applied_ = 0;
  int64_t shards_rebuilt_ = 0;
  PublicationStats stats_;

  // Serializes producers, like WorldVersioner's build lock: readers never
  // take it, so queries keep running while a rebuild is in flight.
  std::mutex build_mutex_;
};

}  // namespace lbsq::dynamic

#endif  // LBSQ_DYNAMIC_SHARDED_WORLD_H_
