#include "dynamic/world_versioner.h"

#include <utility>

#include "common/check.h"
#include "storage/system_builder.h"

namespace lbsq::dynamic {

namespace {

std::shared_ptr<const WorldEpoch> MakeEpoch(
    uint64_t id, std::vector<spatial::Poi> pois, const geom::Rect& world,
    broadcast::BroadcastParams params,
    const core::EngineOptions& options) {
  auto epoch = std::make_shared<WorldEpoch>();
  epoch->id = id;
  epoch->pois = std::move(pois);
  params.epoch = id;
  epoch->system =
      storage::SystemBuilder(world, params).BuildSystemFromPois(epoch->pois);
  epoch->engine =
      std::make_unique<core::QueryEngine>(*epoch->system, world, options);
  return epoch;
}

}  // namespace

WorldVersioner::WorldVersioner(std::vector<spatial::Poi> initial,
                               const geom::Rect& world,
                               const broadcast::BroadcastParams& params,
                               const core::EngineOptions& options,
                               bool retain_history)
    : world_(world),
      params_(params),
      options_(options),
      retain_history_(retain_history) {
  current_ = MakeEpoch(0, std::move(initial), world_, params_, options_);
  if (retain_history_) history_.push_back(current_);
}

WorldVersioner::~WorldVersioner() { StopBuilder(); }

std::shared_ptr<const WorldEpoch> WorldVersioner::Current() const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return current_;
}

std::shared_ptr<const WorldEpoch> WorldVersioner::EpochAt(uint64_t id) const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  if (current_ && current_->id == id) return current_;
  if (id < history_.size()) return history_[static_cast<size_t>(id)];
  return nullptr;
}

uint64_t WorldVersioner::latest_epoch() const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return current_->id;
}

std::shared_ptr<const WorldEpoch> WorldVersioner::BuildNext(
    const WorldEpoch& base, std::vector<PoiUpdate>* updates,
    PublicationStats* stats) const {
  std::vector<spatial::Poi> pois = base.pois;
  ApplyUpdates(updates, &pois);
  stats->epochs_published = 1;
  stats->shards_rebuilt = 1;

  auto epoch = std::make_shared<WorldEpoch>();
  epoch->id = base.id + 1;
  epoch->pois = std::move(pois);
  broadcast::BroadcastParams params = params_;
  params.epoch = epoch->id;

  if (!policy_.force_full && base.system != nullptr) {
    const broadcast::SystemDelta delta = DeltaFromBatch(*updates);
    const size_t base_n = base.pois.size();
    const bool over_threshold =
        base_n == 0 ||
        static_cast<double>(delta.size()) >
            policy_.full_rebuild_churn_fraction * static_cast<double>(base_n);
    if (!over_threshold) {
      broadcast::PatchStats patch_stats;
      epoch->system = broadcast::BroadcastSystem::PatchFrom(
          *base.system, epoch->pois, delta, params, &patch_stats);
      if (epoch->system != nullptr) {
        stats->epochs_patched = 1;
        stats->buckets_patched = patch_stats.buckets_patched;
        stats->buckets_shared = patch_stats.buckets_shared;
      }
    }
  }
  if (epoch->system == nullptr) {
    // Over-threshold churn or a structural decline: full rebuild, counted
    // as a fallback unless full was what the policy asked for anyway.
    if (!policy_.force_full) stats->full_rebuild_fallbacks = 1;
    epoch->system =
        storage::SystemBuilder(world_, params).BuildSystemFromPois(epoch->pois);
  }
  epoch->engine =
      std::make_unique<core::QueryEngine>(*epoch->system, world_, options_);
  return epoch;
}

void WorldVersioner::Publish(std::shared_ptr<const WorldEpoch> next,
                             UpdateBatch batch, int64_t applied,
                             const PublicationStats& stats) {
  std::lock_guard<std::mutex> lock(state_mutex_);
  LBSQ_CHECK(next->id == current_->id + 1);
  current_ = std::move(next);
  if (retain_history_) history_.push_back(current_);
  log_.Append(std::move(batch));
  updates_applied_ += applied;
  stats_.MergeFrom(stats);
  published_cv_.notify_all();
}

uint64_t WorldVersioner::Apply(std::vector<PoiUpdate> updates) {
  // Serializes producers; the pinned-reader path (Current / Execute) never
  // takes this lock, so queries keep running while the rebuild is in flight.
  std::lock_guard<std::mutex> build_lock(build_mutex_);
  const std::shared_ptr<const WorldEpoch> base = Current();
  PublicationStats stats;
  std::shared_ptr<const WorldEpoch> next = BuildNext(*base, &updates, &stats);
  const int64_t applied = static_cast<int64_t>(updates.size());
  UpdateBatch batch{next->id, std::move(updates)};
  const uint64_t id = next->id;
  Publish(std::move(next), std::move(batch), applied, stats);
  return id;
}

bool WorldVersioner::RegionDirty(const geom::Rect& rect,
                                 uint64_t from_exclusive,
                                 uint64_t to_inclusive) const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return log_.RegionDirtyBetween(rect, from_exclusive, to_inclusive);
}

int64_t WorldVersioner::updates_applied() const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return updates_applied_;
}

PublicationStats WorldVersioner::publication_stats() const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return stats_;
}

void WorldVersioner::StartBuilder() {
  std::lock_guard<std::mutex> lock(queue_mutex_);
  if (builder_.joinable()) return;
  stop_builder_ = false;
  builder_ = std::thread([this] { BuilderLoop(); });
}

void WorldVersioner::StopBuilder() {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (!builder_.joinable()) return;
    stop_builder_ = true;
    queue_cv_.notify_all();
  }
  builder_.join();
  builder_ = std::thread();
}

void WorldVersioner::EnqueueBatch(std::vector<PoiUpdate> updates) {
  std::lock_guard<std::mutex> lock(queue_mutex_);
  LBSQ_CHECK(builder_.joinable());
  queue_.push_back(std::move(updates));
  queue_cv_.notify_all();
}

void WorldVersioner::WaitForEpoch(uint64_t id) const {
  std::unique_lock<std::mutex> lock(state_mutex_);
  published_cv_.wait(lock, [this, id] { return current_->id >= id; });
}

void WorldVersioner::BuilderLoop() {
  for (;;) {
    std::vector<PoiUpdate> updates;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock,
                     [this] { return stop_builder_ || !queue_.empty(); });
      // Drain the remaining queue even when stopping, so StopBuilder is a
      // clean flush and WaitForEpoch callers are never stranded.
      if (queue_.empty()) return;
      updates = std::move(queue_.front());
      queue_.pop_front();
    }
    Apply(std::move(updates));
  }
}

}  // namespace lbsq::dynamic
