#ifndef LBSQ_DYNAMIC_UPDATE_LOG_H_
#define LBSQ_DYNAMIC_UPDATE_LOG_H_

#include <cstdint>
#include <vector>

#include "broadcast/incremental.h"
#include "geom/point.h"
#include "geom/rect.h"
#include "spatial/poi.h"

/// \file
/// The POI update log of the dynamic world: the ordered record of every
/// insert/delete/move batch applied to the server database. Each applied
/// batch advances the world by one *epoch*; the log is the oracle that
/// decides whether a verified region produced under epoch `a` is still
/// complete under epoch `b` — it is, exactly when no update in the batches
/// (a, b] touches the region (Lemma 3.1's completeness precondition is
/// preserved by updates that happen elsewhere).

namespace lbsq::dynamic {

/// One POI mutation.
struct PoiUpdate {
  enum class Kind { kInsert, kDelete, kMove };
  Kind kind = Kind::kInsert;
  /// The POI this update targets. Inserts require an id unused by any live
  /// POI; deletes/moves require a live one (violations are skipped by
  /// ApplyUpdates and counted, never applied).
  int64_t id = -1;
  /// Insert/move: the (new) position.
  geom::Point pos;
  /// Delete/move: the position the POI held before the update. Filled
  /// authoritatively by ApplyUpdates from the pre-update database, so the
  /// logged batch carries exactly the region-dirtying footprint.
  geom::Point old_pos;
};

/// The updates that took the world from epoch `epoch - 1` to `epoch`.
struct UpdateBatch {
  uint64_t epoch = 0;
  std::vector<PoiUpdate> updates;
};

/// Applies `*updates` in order to `*pois`, preserving the database's
/// generation order (deletes erase in place, moves rewrite the position,
/// inserts append) so per-epoch oracles stay deterministic. Invalid
/// operations — insert of a live id, delete/move of a missing one — are
/// skipped AND removed from `*updates`, so the surviving vector is exactly
/// the applied batch (with the `old_pos` of every delete/move filled from
/// the pre-update state), ready for the log. Returns the applied count
/// (== updates->size() on return).
int64_t ApplyUpdates(std::vector<PoiUpdate>* updates,
                     std::vector<spatial::Poi>* pois);

/// Nets an applied batch (the post-ApplyUpdates vector, old_pos filled) down
/// to the base-relative delta the incremental rebuild consumes: one removal
/// per base POI the batch takes off the air (at the position it held in the
/// *base* epoch, however many times it moved before vanishing) and one
/// addition per POI alive at the end that is new or moved. A POI deleted and
/// re-inserted in the same batch nets to a removal plus an addition; one
/// inserted and deleted again nets to nothing. This per-id netting is what
/// keeps the delta resolvable against the base file — intermediate positions
/// of chained moves never appear in it.
broadcast::SystemDelta DeltaFromBatch(const std::vector<PoiUpdate>& updates);

/// Append-only record of applied batches (epochs 1, 2, ... in order).
/// Not internally synchronized — WorldVersioner guards its instance.
class UpdateLog {
 public:
  /// Appends the batch for the next epoch. Requires batch.epoch ==
  /// latest_epoch() + 1 (epochs are dense and ordered).
  void Append(UpdateBatch batch);

  /// The newest epoch the log knows (0 = no updates yet).
  uint64_t latest_epoch() const {
    return batches_.empty() ? 0 : batches_.back().epoch;
  }

  /// All recorded batches, oldest first.
  const std::vector<UpdateBatch>& batches() const { return batches_; }

  /// True when any update in a batch with `from_exclusive < epoch <=
  /// to_inclusive` touches `rect`: an insert or move landing inside it, or
  /// a delete or move departing from inside it. A verified region for which
  /// this returns false over the epoch interval separating producer and
  /// consumer is still complete and may be retagged instead of dropped.
  bool RegionDirtyBetween(const geom::Rect& rect, uint64_t from_exclusive,
                          uint64_t to_inclusive) const;

 private:
  std::vector<UpdateBatch> batches_;
};

}  // namespace lbsq::dynamic

#endif  // LBSQ_DYNAMIC_UPDATE_LOG_H_
