#include "ondemand/ondemand.h"

#include <algorithm>
#include <limits>

#include "common/check.h"

namespace lbsq::ondemand {

double MM1ExpectedResponseTime(const OnDemandParams& params) {
  LBSQ_CHECK(params.arrival_rate > 0.0);
  LBSQ_CHECK(params.mean_service_time > 0.0);
  const double mu = 1.0 / params.mean_service_time;
  if (params.arrival_rate >= mu) {
    return std::numeric_limits<double>::infinity();
  }
  return 1.0 / (mu - params.arrival_rate);
}

double MM1Utilization(const OnDemandParams& params) {
  LBSQ_CHECK(params.arrival_rate > 0.0);
  LBSQ_CHECK(params.mean_service_time > 0.0);
  return params.arrival_rate * params.mean_service_time;
}

OnDemandResult SimulateOnDemandServer(const OnDemandParams& params,
                                      int64_t num_requests, Rng* rng) {
  LBSQ_CHECK(num_requests >= 1);
  LBSQ_CHECK(params.arrival_rate > 0.0);
  LBSQ_CHECK(params.mean_service_time > 0.0);
  OnDemandResult result;
  double arrival = 0.0;
  double server_free_at = 0.0;
  double busy_time = 0.0;
  for (int64_t i = 0; i < num_requests; ++i) {
    arrival += rng->Exponential(params.arrival_rate);
    const double start = std::max(arrival, server_free_at);
    const double service = rng->Exponential(1.0 / params.mean_service_time);
    const double completion = start + service;
    result.response_time.Add(completion - arrival);
    busy_time += service;
    server_free_at = completion;
  }
  result.served = num_requests;
  result.utilization = server_free_at > 0.0 ? busy_time / server_free_at : 0.0;
  return result;
}

}  // namespace lbsq::ondemand
