#ifndef LBSQ_ONDEMAND_ONDEMAND_H_
#define LBSQ_ONDEMAND_ONDEMAND_H_

#include <cstdint>

#include "common/rng.h"
#include "common/stats.h"

/// \file
/// The on-demand (point-to-point) access model the paper's §2.1 contrasts
/// the broadcast model against: every client request occupies the server
/// individually, so response time grows with the client population while a
/// broadcast cycle serves any number of listeners at constant latency. This
/// module provides the queueing model (M/M/1) and a discrete-event
/// simulation of a single-server request queue, and is exercised by the
/// scalability bench.

namespace lbsq::ondemand {

/// Parameters of the on-demand server.
struct OnDemandParams {
  /// Aggregate request arrival rate (requests per slot), Poisson.
  double arrival_rate = 0.1;
  /// Mean service time per request in slots (exponential service).
  double mean_service_time = 1.0;
};

/// Outcome of a queue simulation.
struct OnDemandResult {
  /// Response time (queue wait + service) per request, slots.
  RunningStat response_time;
  /// Fraction of time the server was busy.
  double utilization = 0.0;
  /// Requests served.
  int64_t served = 0;
};

/// M/M/1 expected response time: 1 / (mu - lambda), with mu = 1 /
/// mean_service_time. Requires lambda < mu (a stable queue); returns
/// +infinity otherwise.
double MM1ExpectedResponseTime(const OnDemandParams& params);

/// M/M/1 server utilization rho = lambda / mu (may exceed 1 for an unstable
/// queue).
double MM1Utilization(const OnDemandParams& params);

/// Simulates `num_requests` requests through a FIFO single-server queue
/// with Poisson arrivals and exponential service. Deterministic given the
/// RNG state.
OnDemandResult SimulateOnDemandServer(const OnDemandParams& params,
                                      int64_t num_requests, Rng* rng);

}  // namespace lbsq::ondemand

#endif  // LBSQ_ONDEMAND_ONDEMAND_H_
