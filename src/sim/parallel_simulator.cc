#include "sim/parallel_simulator.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "common/rng.h"
#include "dynamic/dynamic_engine.h"
#include "sim/update_workload.h"
#include "sim/workload.h"
#include "spatial/generators.h"

namespace lbsq::sim {

ParallelSimulator::Worker::Worker(const MobilityModel& proto,
                                  const geom::Rect& world, double cell_size)
    : mobility(proto.Clone()),
      positions(static_cast<size_t>(proto.num_hosts())),
      peer_index(world, cell_size) {}

ParallelSimulator::ParallelSimulator(const SimConfig& config)
    : config_(config),
      world_{0.0, 0.0, config.world_side_mi, config.world_side_mi},
      tx_range_mi_(config.params.tx_range_m * kMilesPerMeter) {
  config.Validate();

  Rng poi_rng(DeriveStreamSeed(config.seed, kStreamPois));
  std::vector<spatial::Poi> pois = spatial::GenerateUniformPois(
      &poi_rng, world_, config.ScaledPoiCount());
  base_insert_id_ = FirstInsertId(pois);
  dynamic::RebuildPolicy rebuild_policy;
  rebuild_policy.force_full = config.updates.force_full_rebuild;
  if (config.shards > 1) {
    sharded_world_ = std::make_unique<dynamic::ShardedWorld>(
        std::move(pois), world_, config.broadcast,
        EngineOptionsFromConfig(config), config.shards);
    sharded_world_->set_rebuild_policy(rebuild_policy);
    sharded_current_ = sharded_world_->Current();
  } else {
    const bool retain_history =
        config.updates.enabled() && config.check_cache_invariant;
    versioner_ = std::make_unique<dynamic::WorldVersioner>(
        std::move(pois), world_, config.broadcast,
        EngineOptionsFromConfig(config), retain_history);
    versioner_->set_rebuild_policy(rebuild_policy);
    current_ = versioner_->Current();
  }

  mobility_proto_ = MakeMobilityModel(config, world_);
  const int64_t hosts = mobility_proto_->num_hosts();
  caches_.reserve(static_cast<size_t>(hosts));
  for (int64_t i = 0; i < hosts; ++i) {
    caches_.emplace_back(config.params.csize, config.max_regions_per_host,
                         config.cache_policy);
  }
  snapshot_.resize(static_cast<size_t>(hosts));

  const double cell =
      std::max(tx_range_mi_, config.world_side_mi / 256.0);
  workers_.reserve(static_cast<size_t>(config.threads));
  for (int w = 0; w < config.threads; ++w) {
    workers_.emplace_back(*mobility_proto_, world_, cell);
  }
  if (config.threads > 1) {
    pool_ = std::make_unique<ThreadPool>(config.threads);
  }
}

ParallelSimulator::~ParallelSimulator() = default;

void ParallelSimulator::SetObserver(obs::TraceSink* trace_sink,
                                    MetricsRegistry* registry) {
  trace_sink_ = trace_sink;
  registry_ = registry;
}

void ParallelSimulator::CheckCacheInvariant(int64_t host) const {
  for (const core::VerifiedRegion& vr :
       caches_[static_cast<size_t>(host)].entries()) {
    // Completeness is epoch-relative: validate against the POI database of
    // the epoch the entry was verified on (== the current epoch when
    // updates are off; the sharded static world only ever has epoch 0).
    std::shared_ptr<const dynamic::WorldEpoch> epoch;
    const std::vector<spatial::Poi>* db = nullptr;
    if (config_.shards > 1) {
      db = &sharded_current_->pois;
    } else {
      epoch =
          config_.updates.enabled() ? versioner_->EpochAt(vr.epoch) : current_;
      LBSQ_CHECK(epoch != nullptr);
      db = &epoch->pois;
    }
    const std::vector<spatial::Poi> truth =
        spatial::BruteForceWindow(*db, vr.region);
    // Every server POI inside the region must be cached.
    for (const spatial::Poi& poi : truth) {
      const bool present =
          std::any_of(vr.pois.begin(), vr.pois.end(),
                      [&poi](const spatial::Poi& p) { return p.id == poi.id; });
      LBSQ_CHECK(present);
    }
    // And nothing outside the region may be stored in this entry.
    for (const spatial::Poi& poi : vr.pois) {
      LBSQ_CHECK(vr.region.Contains(poi.pos));
    }
  }
}

ParallelSimulator::EventResult ParallelSimulator::ExecuteEvent(
    Worker* worker, const QueryEvent& event, int64_t query_id) {
  // Advance every host in the worker's private fleet replica and refresh
  // its peer index. Each worker visits its events in time order, so its
  // replica only ever moves forward.
  const int64_t hosts = worker->mobility->num_hosts();
  for (int64_t i = 0; i < hosts; ++i) {
    worker->positions[static_cast<size_t>(i)] =
        worker->mobility->Position(i, event.time_min);
  }
  worker->peer_index.ApplyMoves(worker->positions);

  const geom::Point pos = worker->positions[static_cast<size_t>(event.host)];
  std::vector<core::PeerData> peers;
  EventResult result;
  result.peer_count = GatherPeers(
      worker->peer_index, worker->positions, event.host, tx_range_mi_,
      config_.p2p_hops,
      [this](int64_t id) { return snapshot_[static_cast<size_t>(id)]; },
      &peers);
  if (config_.updates.enabled()) {
    // The pinned epoch is immutable while workers run (chunk boundaries
    // are clamped to update boundaries), so this decision depends only on
    // the region's epoch tag and the update log — never the thread count.
    dynamic::RevalidationStats revalidation;
    if (config_.shards > 1) {
      auto dirty = [this](const geom::Rect& rect, uint64_t lo, uint64_t hi) {
        return sharded_world_->RegionDirty(rect, lo, hi);
      };
      revalidation = dynamic::RevalidatePeerDataWith(
          dirty, sharded_current_->id, &peers);
    } else {
      revalidation =
          dynamic::RevalidatePeerData(*versioner_, current_->id, &peers);
    }
    result.regions_revalidated = revalidation.revalidated;
    result.regions_stale_rejected = revalidation.rejected;
  }
  result.measured = event.time_min >= config_.warmup_min;

  // Record into the event's private slot; the fold serializes in event
  // order, so the trace bytes match the sequential engine's exactly.
  obs::TraceRecorder* trace = nullptr;
  if (result.measured && trace_sink_ != nullptr) {
    result.trace.Reset(query_id, event.host,
                       event.type == QueryType::kKnn ? "knn" : "window");
    result.traced = true;
    trace = &result.trace;
  }

  const int64_t slot = static_cast<int64_t>(
      event.time_min * config_.slots_per_second * 60.0);
  const bool sharded = config_.shards > 1;
  if (event.type == QueryType::kKnn) {
    KnnQueryResult knn =
        sharded ? ExecuteKnnQuery(config_, *sharded_current_->engine,
                                  sharded_current_->pois, pos, event.k, slot,
                                  std::move(peers), result.measured, query_id,
                                  trace, worker->sharded_workspace)
                : ExecuteKnnQuery(config_, *current_->engine, pos, event.k,
                                  slot, std::move(peers), result.measured,
                                  query_id, trace, &worker->workspace);
    // Clean shards still carry the epoch stamp of their last rebuild; what
    // this query verified is consistent with the pinned *global* epoch,
    // which is what peer revalidation consults.
    if (sharded) knn.outcome.cacheable.epoch = sharded_current_->id;
    caches_[static_cast<size_t>(event.host)].Insert(
        std::move(knn.outcome.cacheable), pos, pos,
        worker->mobility->Heading(event.host));
    if (config_.check_cache_invariant) CheckCacheInvariant(event.host);
    result.knn = std::move(knn);
  } else {
    WindowQueryResult window =
        sharded ? ExecuteWindowQuery(config_, *sharded_current_->engine,
                                     sharded_current_->pois, event.window,
                                     slot, std::move(peers), result.measured,
                                     query_id, trace,
                                     worker->sharded_workspace)
                : ExecuteWindowQuery(config_, *current_->engine, event.window,
                                     slot, std::move(peers), result.measured,
                                     query_id, trace, &worker->workspace);
    if (sharded) window.outcome.cacheable.epoch = sharded_current_->id;
    caches_[static_cast<size_t>(event.host)].Insert(
        std::move(window.outcome.cacheable), event.window.center(), pos,
        worker->mobility->Heading(event.host));
    if (config_.check_cache_invariant) CheckCacheInvariant(event.host);
    result.window = std::move(window);
  }
  return result;
}

void ParallelSimulator::MaybeApplyUpdates(size_t event_index,
                                          double event_time_min,
                                          SimMetrics* metrics) {
  if (!config_.updates.enabled()) return;
  const size_t interval =
      static_cast<size_t>(config_.updates.interval_events);
  if (event_index == 0 || event_index % interval != 0) return;
  // Identical to the sequential engine: batch k = index / interval produces
  // epoch k from the epoch-(k-1) snapshot, purely from (config, seed, k).
  const uint64_t k = event_index / interval;
  if (config_.shards > 1) {
    std::vector<dynamic::PoiUpdate> batch =
        GenerateUpdateBatch(config_.updates, config_.seed, k,
                            sharded_current_->pois, world_, base_insert_id_);
    const int64_t before = sharded_world_->updates_applied();
    const uint64_t published = sharded_world_->Apply(std::move(batch));
    LBSQ_CHECK(published == k);
    sharded_current_ = sharded_world_->Current();
    if (event_time_min >= config_.warmup_min) {
      metrics->epochs_published += 1;
      metrics->updates_applied += sharded_world_->updates_applied() - before;
    }
    return;
  }
  std::vector<dynamic::PoiUpdate> batch =
      GenerateUpdateBatch(config_.updates, config_.seed, k, current_->pois,
                          world_, base_insert_id_);
  const int64_t before = versioner_->updates_applied();
  const uint64_t published = versioner_->Apply(std::move(batch));
  LBSQ_CHECK(published == k);
  current_ = versioner_->Current();
  if (event_time_min >= config_.warmup_min) {
    metrics->epochs_published += 1;
    metrics->updates_applied += versioner_->updates_applied() - before;
  }
}

SimMetrics ParallelSimulator::Execute(const std::vector<QueryEvent>& events) {
  SimMetrics metrics;
  const int64_t hosts = mobility_proto_->num_hosts();
  const size_t epoch = static_cast<size_t>(config_.events_per_epoch);
  const int64_t workers = static_cast<int64_t>(workers_.size());
  std::vector<EventResult> results;

  for (size_t begin = 0; begin < events.size();) {
    size_t end = std::min(events.size(), begin + epoch);
    if (config_.updates.enabled()) {
      // Cut chunks at update boundaries — boundaries depend only on the
      // config, so chunking (and therefore every snapshot) is identical at
      // any thread count — and apply the batch due at this boundary.
      const size_t interval =
          static_cast<size_t>(config_.updates.interval_events);
      end = std::min(end, (begin / interval + 1) * interval);
      MaybeApplyUpdates(begin, events[begin].time_min, &metrics);
    }

    // Epoch barrier: freeze every host's shareable data. Workers read the
    // snapshot lock-free for the rest of the epoch.
    for (int64_t h = 0; h < hosts; ++h) {
      snapshot_[static_cast<size_t>(h)] =
          caches_[static_cast<size_t>(h)].Share();
    }

    results.assign(end - begin, EventResult{});
    const auto run_worker = [&](int w) {
      Worker& worker = workers_[static_cast<size_t>(w)];
      for (size_t i = begin; i < end; ++i) {
        const QueryEvent& event = events[i];
        // Shard by querying host so each cache has exactly one writer, and
        // receives its inserts in event order no matter the thread count.
        if (event.host % workers != w) continue;
        results[i - begin] =
            ExecuteEvent(&worker, event, static_cast<int64_t>(i));
      }
    };
    if (pool_) {
      pool_->RunOnAll(run_worker);
    } else {
      run_worker(0);
    }

    // Fold per-event results in global event order on this thread. Every
    // accumulator — SimMetrics, the registry, and the trace sink — sees
    // the exact sequence the sequential engine would produce, so the
    // result is bitwise independent of the thread count.
    for (const EventResult& result : results) {
      if (!result.measured) continue;
      metrics.regions_revalidated += result.regions_revalidated;
      metrics.regions_stale_rejected += result.regions_stale_rejected;
      metrics.peers_per_query.Add(result.peer_count);
      if (registry_ != nullptr) {
        registry_->Observe("peers_per_query",
                           static_cast<double>(result.peer_count));
      }
      if (result.knn) AccumulateKnn(*result.knn, &metrics, registry_);
      if (result.window) AccumulateWindow(*result.window, &metrics, registry_);
      if (result.traced && trace_sink_ != nullptr) {
        trace_sink_->Append(result.trace);
      }
    }
    begin = end;
  }
  return metrics;
}

SimMetrics ParallelSimulator::Run() {
  trace_.clear();
  std::vector<QueryEvent> events = GenerateWorkload(config_, world_);
  SimMetrics metrics = Execute(events);
  if (config_.record_trace) trace_ = std::move(events);
  return metrics;
}

SimMetrics ParallelSimulator::Replay(const std::vector<QueryEvent>& events) {
  // Update batches are keyed by event index; replaying a dynamic run on an
  // already-advanced world cannot reproduce the recording.
  if (config_.updates.enabled()) {
    LBSQ_CHECK((config_.shards > 1 ? sharded_world_->latest_epoch()
                                   : versioner_->latest_epoch()) == 0);
  }
  for (const QueryEvent& event : events) {
    LBSQ_CHECK(event.host >= 0 &&
               event.host < mobility_proto_->num_hosts());
  }
  return Execute(events);
}

}  // namespace lbsq::sim
