#ifndef LBSQ_SIM_CONFIG_H_
#define LBSQ_SIM_CONFIG_H_

#include <cstdint>
#include <string>

#include "broadcast/system.h"
#include "core/peer_cache.h"
#include "fault/fault_model.h"
#include "onair/onair_window.h"

/// \file
/// Simulation parameter sets. `ParameterSet` mirrors Table 3 of the paper
/// (values quoted for the full 20 mi x 20 mi study area); `SimConfig` adds
/// the scaling, mobility, and broadcast-organization knobs. All reported
/// metrics are density-driven ratios, so runs over a scaled-down world with
/// identical per-square-mile densities reproduce the paper's trends at a
/// fraction of the cost.

namespace lbsq::sim {

/// Miles per meter (the paper quotes transmission ranges in meters).
inline constexpr double kMilesPerMeter = 1.0 / 1609.344;

/// Side length of the paper's study area in miles.
inline constexpr double kPaperWorldSideMiles = 20.0;

/// One row of Table 3 (full-scale values).
struct ParameterSet {
  std::string name;
  /// POIs in the 20 x 20 mi area.
  double poi_number = 0.0;
  /// Mobile hosts on the road in the area.
  double mh_number = 0.0;
  /// Cache capacity per data type, in POIs (CSize).
  int csize = 50;
  /// Mean queries per minute over the whole area.
  double query_per_min = 0.0;
  /// Wireless transmission range in meters (TxRange).
  double tx_range_m = 200.0;
  /// Mean number of queried nearest neighbors (kNN).
  double knn_k = 5.0;
  /// Mean query-window size as a percentage of the search space (Window).
  double window_pct = 3.0;
  /// Mean distance between a querying host and its window center, miles.
  double distance_mi = 1.0;
  /// Length of a simulation run, hours (Texecution).
  double t_execution_hr = 10.0;

  /// Densities (per square mile) — the quantities that actually drive the
  /// results.
  double PoiDensity() const;
  double MhDensity() const;
  double QueryRatePerSqMiPerMin() const;
};

/// The three parameter sets of Table 3.
ParameterSet LosAngelesCity();
ParameterSet SyntheticSuburbia();
ParameterSet RiversideCounty();

/// The query type a simulation exercises. kMixed interleaves both kinds
/// (paper experiments run them separately; the mixed workload exercises the
/// cross-pollination of the shared per-host cache, since window results can
/// verify later kNN queries and vice versa).
enum class QueryType { kKnn, kWindow, kMixed };

/// Host mobility model.
enum class MobilityType {
  /// Pure random waypoint (the paper's base model).
  kRandomWaypoint,
  /// Manhattan street grid (road-constrained trajectories; the paper maps
  /// its movement onto an underlying road network).
  kManhattanGrid,
};

/// Dynamic-world update workload: periodic batches of POI inserts, deletes,
/// and moves applied to the live dataset while queries run. Batches are a
/// pure function of (seed, batch index, previous epoch snapshot), so the
/// resulting epoch sequence — and every downstream metric — is bitwise
/// deterministic across thread counts. Disabled (interval_events == 0) the
/// simulator's output is byte-identical to the static engine.
struct UpdateWorkloadConfig {
  /// Apply one batch every this many query events (0 = updates off).
  int interval_events = 0;
  /// Per-batch operation counts.
  int inserts_per_batch = 2;
  int deletes_per_batch = 1;
  int moves_per_batch = 2;
  /// Maximum per-axis displacement of a moved POI, miles (clamped to the
  /// world rectangle).
  double move_radius_mi = 0.25;
  /// Publish every epoch through a cold full rebuild instead of the
  /// diff-aware incremental patch (the reference side of the
  /// incremental-vs-full CI diff; answers are bit-identical either way).
  bool force_full_rebuild = false;

  bool enabled() const { return interval_events > 0; }
  /// Aborts unless counts are sane; called from SimConfig::Validate.
  void Validate() const;
};

/// A full simulation configuration.
struct SimConfig {
  ParameterSet params = LosAngelesCity();
  QueryType query_type = QueryType::kKnn;

  /// Side of the (scaled) simulated world in miles. 20 reproduces the paper
  /// at full scale; the default keeps densities identical at ~1/25 the
  /// host count.
  double world_side_mi = 4.0;
  /// Warm-up period before metrics are recorded, minutes.
  double warmup_min = 20.0;
  /// Measured period after warm-up, minutes.
  double duration_min = 20.0;

  /// Random-waypoint speed range, miles per hour.
  double speed_min_mph = 20.0;
  double speed_max_mph = 60.0;

  /// Mobility model and (for the Manhattan grid) the street spacing.
  MobilityType mobility = MobilityType::kRandomWaypoint;
  double street_block_mi = 0.1;

  /// Peer-discovery hop limit. 1 = the paper's single-hop sharing; higher
  /// values let requests be relayed through intermediate hosts (each hop
  /// reaches hosts within TxRange of the previous frontier).
  int p2p_hops = 1;

  /// Fraction of queries that are window queries under QueryType::kMixed.
  double mixed_window_fraction = 0.3;

  /// SBNN prefetch factor (see SbnnOptions::prefetch_radius_factor).
  double prefetch_radius_factor = 1.0;

  /// Maximum verified regions kept per host cache.
  int max_regions_per_host = 8;
  /// Capacity-overflow policy for host caches. kSoundShrink (default) keeps
  /// answers exact; kCollectiveMbr reproduces the paper's literal §4.1
  /// policy, which inflates verified regions at the cost of wrong answers
  /// (the simulator counts them in SimMetrics::answer_errors).
  core::CachePolicy cache_policy = core::CachePolicy::kSoundShrink;

  /// Broadcast channel organization.
  broadcast::BroadcastParams broadcast;
  /// Broadcast slots (buckets) transmitted per second.
  double slots_per_second = 50.0;

  /// Parallel broadcast channels: the POI database is partitioned into this
  /// many contiguous Hilbert ranges, each broadcast on its own channel and
  /// queried through core::ShardedQueryEngine (1 = the classic single
  /// channel, byte-identical to the unsharded engines). Answers are
  /// shard-count-invariant (with approximate kNN acceptance disabled the
  /// per-run answer digest is bitwise equal at any shard count); cost
  /// metrics follow the multi-channel conventions (latency = max over
  /// queried channels, tuning = sum). Incompatible with fault injection
  /// (single-channel concept) and, for now, with check_cache_invariant
  /// under updates (sharded epochs are not history-retained).
  int shards = 1;

  /// SBNN: whether approximate answers are accepted and their threshold.
  bool accept_approximate = true;
  double min_correctness = 0.5;
  /// Ablations: §3.3.3 data filtering, the index-bound tightening of the
  /// fallback search radius (see SbnnOptions), and SBWQ window reduction.
  bool use_filtering = true;
  bool tighten_with_index_bound = false;
  bool use_window_reduction = true;
  onair::WindowRetrieval retrieval = onair::WindowRetrieval::kSingleSpan;

  /// Scaling mode for window-query experiments. The window-size sweep of
  /// the paper is governed by the dimensionless ratio (POIs per window) /
  /// CSize — window sizes are percentages of the whole space, so shrinking
  /// the world at constant POI *density* shrinks windows' absolute POI
  /// content and the cache capacity stops binding. With this flag the world
  /// keeps the paper's absolute POI *count* (2750/2100/1450) and the
  /// window-center distance scales linearly with the world side, preserving
  /// the paper's window/cache/VR geometry exactly. MH and query densities
  /// scale as usual.
  bool paper_window_geometry = false;

  /// Worker threads of the parallel engine (ParallelSimulator); the
  /// sequential Simulator ignores it. The parallel engine is bitwise
  /// deterministic across thread counts: any value yields identical metrics
  /// for the same config + seed.
  int threads = 1;
  /// Query events per epoch of the parallel engine. Peer-cache state is
  /// snapshotted at epoch barriers and read immutably within an epoch, so
  /// larger epochs expose more parallelism but serve (slightly) staler peer
  /// data. 1 reproduces the sequential engine's live-cache semantics
  /// exactly. Must not be derived from `threads` — it is part of the
  /// simulated semantics, and tying it to the thread count would break the
  /// determinism guarantee.
  int events_per_epoch = 32;

  /// When true, the simulator records every query event it samples;
  /// retrieve with Simulator::trace() and replay with Simulator::Replay().
  bool record_trace = false;

  /// Fault injection: channel loss/corruption, peer data corruption, and
  /// the retry/deadline resilience policy. Disabled by default — a disabled
  /// config yields output byte-identical to the pre-fault simulator. The
  /// fault schedule is keyed per query id, so results stay bitwise
  /// deterministic across `threads`.
  fault::FaultConfig fault;

  /// Dynamic-world POI churn. Disabled by default — a disabled config yields
  /// output byte-identical to the static-world simulator.
  UpdateWorkloadConfig updates;

  /// When true, the simulator validates every cache entry against the
  /// server database after each insertion (slow; for tests).
  bool check_cache_invariant = false;
  /// When true, every sharing-based answer is checked against a brute-force
  /// oracle over the server database (slow; for tests).
  bool check_answers = false;

  uint64_t seed = 1;

  /// Aborts (LBSQ_CHECK) unless the configuration is internally consistent:
  /// positive world/duration, warmup >= 0, threads/epoch/hops >= 1,
  /// min_correctness and mixed_window_fraction in [0, 1],
  /// prefetch_radius_factor >= 1, positive slot rate and cache capacities.
  /// Called by both simulation engines at construction — the one choke point
  /// replacing the ad-hoc checks that used to be scattered across them.
  void Validate() const;

  /// Area scale factor relative to the paper's 400 sq mi.
  double Scale() const;
  /// Host/POI counts and query rate scaled to the configured world.
  int64_t ScaledMhCount() const;
  int64_t ScaledPoiCount() const;
  double ScaledQueriesPerMin() const;
};

}  // namespace lbsq::sim

#endif  // LBSQ_SIM_CONFIG_H_
