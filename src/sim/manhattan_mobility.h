#ifndef LBSQ_SIM_MANHATTAN_MOBILITY_H_
#define LBSQ_SIM_MANHATTAN_MOBILITY_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "geom/point.h"
#include "geom/rect.h"
#include "sim/mobility.h"

/// \file
/// Manhattan-grid mobility: vehicles move along a regular grid of streets,
/// choosing at each intersection to continue straight (probability 1/2) or
/// turn left/right (1/4 each, renormalized at the world border). The paper
/// maps its random-waypoint trajectories onto an underlying road network;
/// this model is the standard road-constrained abstraction of that setup
/// and is offered as an alternative to pure random waypoint.

namespace lbsq::sim {

/// Grid-street trajectories for a fleet of hosts.
class ManhattanGridModel : public MobilityModel {
 public:
  /// `num_hosts` hosts on a street grid with `block` spacing (world units)
  /// over `world`, at speeds uniform in [speed_min, speed_max] (world units
  /// per minute). Hosts start at uniformly chosen intersections. Host `h`
  /// draws from the counter-based stream `(seed, h)` (see MobilityModel).
  ManhattanGridModel(const geom::Rect& world, int64_t num_hosts, double block,
                     double speed_min, double speed_max, uint64_t seed);

  int64_t num_hosts() const override {
    return static_cast<int64_t>(hosts_.size());
  }
  geom::Point Position(int64_t host, double t) override;
  geom::Point Heading(int64_t host) const override;
  std::unique_ptr<MobilityModel> Clone() const override {
    return std::make_unique<ManhattanGridModel>(*this);
  }

  /// Street spacing actually used (the requested block, clamped so at least
  /// two intersections exist per axis).
  double block() const { return block_; }

 private:
  struct HostState {
    // Intersection grid coordinates the current leg starts from, direction
    // of travel, and timing.
    int ix = 0;
    int iy = 0;
    int dx = 0;  // one of (+-1, 0)
    int dy = 0;
    double depart_time = 0.0;
    double arrive_time = 0.0;
  };

  geom::Point Intersection(int ix, int iy) const;
  /// Picks the next direction at intersection (ix, iy) given the incoming
  /// direction, renormalizing straight/left/right over in-bounds options.
  void PickDirection(HostState* host, Rng* rng) const;
  void StartLeg(HostState* host, Rng* rng, double t) const;

  geom::Rect world_;
  double block_;
  int cells_x_;  // intersections per axis minus 1
  int cells_y_;
  double speed_min_;
  double speed_max_;
  std::vector<HostState> hosts_;
  std::vector<Rng> rngs_;
};

}  // namespace lbsq::sim

#endif  // LBSQ_SIM_MANHATTAN_MOBILITY_H_
