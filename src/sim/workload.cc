#include "sim/workload.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "sim/manhattan_mobility.h"

namespace lbsq::sim {

namespace {

/// Mean-`knn_k` Poisson draw, clamped to >= 1.
int SampleK(Rng* rng, const SimConfig& config) {
  const double mean = config.params.knn_k;
  return static_cast<int>(std::max<int64_t>(1, rng->Poisson(mean)));
}

/// Samples a query window per the paper: mean window area = window_pct% of
/// the search space (exponential around the mean, clamped to a sane range),
/// centered at a normally distributed distance from the host in a uniform
/// direction, clamped inside the world.
geom::Rect SampleWindow(Rng* rng, const SimConfig& config,
                        const geom::Rect& world, geom::Point pos) {
  const double mean_fraction = config.params.window_pct / 100.0;
  double fraction = rng->Exponential(1.0 / mean_fraction);
  fraction = std::clamp(fraction, mean_fraction / 10.0, 4.0 * mean_fraction);
  const double side = std::sqrt(fraction) * config.world_side_mi;
  // Under the paper-geometry scaling mode the center distance shrinks
  // linearly with the world so the window/center geometry matches the
  // paper's proportions.
  double mean_distance = config.params.distance_mi;
  if (config.paper_window_geometry) {
    mean_distance *= config.world_side_mi / kPaperWorldSideMiles;
  }
  const double distance =
      std::abs(rng->Normal(mean_distance, mean_distance / 3.0));
  const double angle = rng->Uniform(0.0, 2.0 * M_PI);
  geom::Point center{pos.x + distance * std::cos(angle),
                     pos.y + distance * std::sin(angle)};
  center.x = std::clamp(center.x, world.x1, world.x2);
  center.y = std::clamp(center.y, world.y1, world.y2);
  return geom::Rect::CenteredSquare(center, side / 2.0);
}

}  // namespace

std::unique_ptr<MobilityModel> MakeMobilityModel(const SimConfig& config,
                                                 const geom::Rect& world) {
  const int64_t hosts = config.ScaledMhCount();
  // Speeds in miles/minute. Under the paper-geometry window scaling, host
  // speeds shrink linearly with the world so cache entries age (drift out of
  // relevance) at the paper's rate relative to the window geometry.
  const double speed_scale =
      config.paper_window_geometry
          ? config.world_side_mi / kPaperWorldSideMiles
          : 1.0;
  const double speed_min = config.speed_min_mph / 60.0 * speed_scale;
  const double speed_max = config.speed_max_mph / 60.0 * speed_scale;
  const uint64_t seed = DeriveStreamSeed(config.seed, kStreamMobility);
  if (config.mobility == MobilityType::kManhattanGrid) {
    return std::make_unique<ManhattanGridModel>(
        world, hosts, config.street_block_mi, speed_min, speed_max, seed);
  }
  return std::make_unique<RandomWaypointModel>(world, hosts, speed_min,
                                               speed_max, seed);
}

std::vector<QueryEvent> GenerateWorkload(const SimConfig& config,
                                         const geom::Rect& world) {
  LBSQ_CHECK(config.duration_min > 0.0);
  // Window centers depend on host positions at query time; a private fleet
  // replica supplies them (event times are globally non-decreasing, so the
  // lazy models advance legally).
  const std::unique_ptr<MobilityModel> mobility =
      MakeMobilityModel(config, world);
  const int64_t hosts = mobility->num_hosts();

  Rng arrivals(DeriveStreamSeed(config.seed, kStreamArrivals));
  const uint64_t param_seed = DeriveStreamSeed(config.seed, kStreamQueryParams);
  std::vector<Rng> param_rngs;
  param_rngs.reserve(static_cast<size_t>(hosts));
  for (int64_t h = 0; h < hosts; ++h) {
    param_rngs.emplace_back(DeriveStreamSeed(param_seed,
                                             static_cast<uint64_t>(h)));
  }

  std::vector<QueryEvent> events;
  const double rate = std::max(config.ScaledQueriesPerMin(), 1e-6);
  const double end = config.warmup_min + config.duration_min;
  double t = 0.0;
  for (;;) {
    t += arrivals.Exponential(rate);
    if (t > end) break;
    QueryEvent event;
    event.time_min = t;
    event.host =
        static_cast<int64_t>(arrivals.NextBelow(static_cast<uint64_t>(hosts)));
    QueryType type = config.query_type;
    if (type == QueryType::kMixed) {
      type = arrivals.NextBool(config.mixed_window_fraction)
                 ? QueryType::kWindow
                 : QueryType::kKnn;
    }
    event.type = type;
    Rng& params = param_rngs[static_cast<size_t>(event.host)];
    if (type == QueryType::kKnn) {
      event.k = SampleK(&params, config);
    } else {
      event.window = SampleWindow(&params, config, world,
                                  mobility->Position(event.host, t));
    }
    events.push_back(event);
  }
  return events;
}

}  // namespace lbsq::sim
