#ifndef LBSQ_SIM_METRICS_H_
#define LBSQ_SIM_METRICS_H_

#include <cstdint>
#include <string>

#include "common/stats.h"

/// \file
/// Metric collection for simulation runs: the resolved-by breakdown the
/// paper's Figures 10-15 report, plus the latency/tuning accounting behind
/// the motivation (Figure 2 and §2.1).

namespace lbsq::sim {

/// One FNV-1a step over the 8 bytes of `value` (little-endian order).
/// Exposed so the accumulate functions in query_exec can fold answers into
/// SimMetrics::answer_digest with the exact same primitive Merge uses.
uint64_t DigestFold(uint64_t acc, uint64_t value);

/// Aggregated results of one simulation run (post-warm-up queries only).
struct SimMetrics {
  /// Total measured queries.
  int64_t queries = 0;
  /// Queries fully answered by verified peer data (SBNN) or a fully covered
  /// window (SBWQ) — zero broadcast access.
  int64_t solved_verified = 0;
  /// kNN queries answered approximately from peers (all unverified entries
  /// above the correctness threshold).
  int64_t solved_approximate = 0;
  /// Queries that had to touch the broadcast channel.
  int64_t solved_broadcast = 0;
  /// Exact-path queries (everything except approximate kNN answers) whose
  /// result differed from the brute-force oracle. Always 0 under the sound
  /// cache policy; nonzero under kCollectiveMbr.
  int64_t answer_errors = 0;
  /// Approximate kNN answers that happened to equal the oracle's top-k.
  int64_t approx_exact = 0;

  /// Fault-injection accounting (all zero when faults are disabled).
  /// Queries whose retrieval could not complete within the retry budget /
  /// deadline; their answers are best-effort and excluded from
  /// answer_errors.
  int64_t degraded_queries = 0;
  /// Receptions lost to the channel across all measured queries.
  int64_t fault_losses = 0;
  /// Receptions discarded for failing the CRC check.
  int64_t fault_corruptions = 0;
  /// Queries whose retrieval was cut short by the slot deadline.
  int64_t fault_deadline_hits = 0;
  /// Peer regions rejected by the defensive cross-check screen.
  int64_t regions_rejected = 0;

  /// Dynamic-world accounting (all zero when updates are disabled).
  /// POI insert/delete/move operations applied during the measured window.
  int64_t updates_applied = 0;
  /// Epochs published during the measured window.
  int64_t epochs_published = 0;
  /// Cross-epoch peer regions proven still complete and retagged.
  int64_t regions_revalidated = 0;
  /// Cross-epoch peer regions rejected because an update touched them.
  int64_t regions_stale_rejected = 0;

  /// Order-sensitive FNV-1a fold over every measured answer (POI ids and
  /// distance bit patterns, in the canonical sorted answer order, folded in
  /// event order). Two runs that return the same answers to the same queries
  /// in the same order share a digest; a single flipped id or distance bit
  /// changes it. This is the shard-invariance witness: with approximate
  /// kNN acceptance disabled, the digest is identical at any shard count.
  uint64_t answer_digest = 1469598103934665603ull;  // FNV-1a offset basis

  /// Peers within range per query.
  RunningStat peers_per_query;
  /// Access latency / tuning time (slots) of queries that used the channel.
  RunningStat broadcast_latency;
  RunningStat broadcast_tuning;
  /// Buckets downloaded / excused by the data filter per broadcast query.
  RunningStat buckets_read;
  RunningStat buckets_skipped;
  /// What the pure on-air baseline would have cost for the same queries
  /// (computed for every query, peer-resolved or not).
  RunningStat baseline_latency;
  RunningStat baseline_tuning;
  /// SBWQ: residual window area fraction after peer coverage.
  RunningStat residual_fraction;
  /// Verified entries in H for kNN queries (diagnostic).
  RunningStat verified_per_query;

  /// Percentages of the resolved-by breakdown (0..100).
  double PctVerified() const;
  double PctApproximate() const;
  double PctBroadcast() const;
  /// Percentage of exact-path queries with wrong answers (0..100).
  double PctAnswerErrors() const;

  /// Mean access latency over *all* queries, counting peer-resolved queries
  /// as zero-latency — the paper's headline effect.
  double MeanLatencyAllQueries() const;

  /// Folds `other` into this (counter sums + parallel Welford merges).
  /// Associative up to floating-point rounding; note that because double
  /// addition is not associative, merge results depend on how observations
  /// were partitioned — which is why the parallel engine folds per-event
  /// results in event order instead of merging per-thread accumulators when
  /// bitwise determinism across thread counts is required.
  void Merge(const SimMetrics& other);

  /// Bitwise equality across every counter and accumulator moment — the
  /// determinism contract `lbsq_sim --threads N` is tested against.
  friend bool operator==(const SimMetrics& a, const SimMetrics& b);

  /// One-line summary for logs.
  std::string ToString() const;
};

}  // namespace lbsq::sim

#endif  // LBSQ_SIM_METRICS_H_
