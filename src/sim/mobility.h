#ifndef LBSQ_SIM_MOBILITY_H_
#define LBSQ_SIM_MOBILITY_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "geom/point.h"
#include "geom/rect.h"

/// \file
/// The random waypoint mobility model (Broch et al.), the paper's mobility
/// model: each host repeatedly picks a uniform destination in the world and
/// travels to it in a straight line at a uniformly drawn speed (zero pause
/// time). Positions are closed-form along each leg, so the model is queried
/// lazily at arbitrary (non-decreasing) times without a tick loop.
///
/// Every host draws from its own counter-based RNG stream
/// (`DeriveStreamSeed(seed, host)`), so a host's trajectory depends only on
/// the model seed and its id — never on how far any other host has been
/// advanced. Clone() therefore yields an independent replica that generates
/// bit-identical trajectories: the parallel engine hands each worker thread
/// its own clone and lets it advance hosts freely without synchronization.

namespace lbsq::sim {

/// Interface for host mobility models. Implementations must be
/// deterministic given their seed and support lazy, non-decreasing-time
/// position queries per host.
class MobilityModel {
 public:
  virtual ~MobilityModel() = default;

  /// Number of hosts.
  virtual int64_t num_hosts() const = 0;

  /// Position of `host` at time `t` (minutes, non-decreasing per host).
  virtual geom::Point Position(int64_t host, double t) = 0;

  /// Unit vector of the host's current direction of travel (zero when
  /// stationary). Valid for the time of the most recent Position() call.
  virtual geom::Point Heading(int64_t host) const = 0;

  /// Independent replica producing bit-identical trajectories, reset to this
  /// model's current state. Clones share nothing; advancing one never
  /// affects another.
  virtual std::unique_ptr<MobilityModel> Clone() const = 0;
};

/// Random-waypoint trajectories for a fleet of hosts.
class RandomWaypointModel : public MobilityModel {
 public:
  /// `num_hosts` hosts with uniform starting positions in `world`, moving at
  /// speeds uniform in [speed_min, speed_max] (world units per minute).
  /// Host `h` draws from the counter-based stream `(seed, h)`.
  RandomWaypointModel(const geom::Rect& world, int64_t num_hosts,
                      double speed_min, double speed_max, uint64_t seed);

  /// Number of hosts.
  int64_t num_hosts() const override {
    return static_cast<int64_t>(legs_.size());
  }

  /// Position of `host` at time `t` (minutes). Times must be non-decreasing
  /// per host; the model advances through legs lazily.
  geom::Point Position(int64_t host, double t) override;

  /// Unit vector of the host's current direction of travel (zero vector
  /// when the current leg is degenerate). Valid for the time of the most
  /// recent Position() call for this host.
  geom::Point Heading(int64_t host) const override;

  std::unique_ptr<MobilityModel> Clone() const override {
    return std::make_unique<RandomWaypointModel>(*this);
  }

 private:
  struct Leg {
    geom::Point from;
    geom::Point to;
    double depart_time = 0.0;
    double arrive_time = 0.0;
  };

  void StartNewLeg(int64_t host, geom::Point from, double t);

  geom::Rect world_;
  double speed_min_;
  double speed_max_;
  std::vector<Leg> legs_;
  std::vector<Rng> rngs_;
};

}  // namespace lbsq::sim

#endif  // LBSQ_SIM_MOBILITY_H_
