#include "sim/config.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace lbsq::sim {

namespace {
constexpr double kPaperAreaSqMi = kPaperWorldSideMiles * kPaperWorldSideMiles;
}  // namespace

double ParameterSet::PoiDensity() const { return poi_number / kPaperAreaSqMi; }
double ParameterSet::MhDensity() const { return mh_number / kPaperAreaSqMi; }
double ParameterSet::QueryRatePerSqMiPerMin() const {
  return query_per_min / kPaperAreaSqMi;
}

ParameterSet LosAngelesCity() {
  ParameterSet p;
  p.name = "Los Angeles City";
  p.poi_number = 2750;
  p.mh_number = 93300;
  p.csize = 50;
  p.query_per_min = 6220;
  p.tx_range_m = 200;
  p.knn_k = 5;
  p.window_pct = 3;
  p.distance_mi = 1;
  p.t_execution_hr = 10;
  return p;
}

ParameterSet SyntheticSuburbia() {
  ParameterSet p = LosAngelesCity();
  p.name = "Synthetic Suburbia";
  p.poi_number = 2100;
  p.mh_number = 51500;
  p.query_per_min = 3440;
  return p;
}

ParameterSet RiversideCounty() {
  ParameterSet p = LosAngelesCity();
  p.name = "Riverside County";
  p.poi_number = 1450;
  p.mh_number = 9700;
  p.query_per_min = 650;
  return p;
}

void UpdateWorkloadConfig::Validate() const {
  LBSQ_CHECK(interval_events >= 0);
  LBSQ_CHECK(inserts_per_batch >= 0);
  LBSQ_CHECK(deletes_per_batch >= 0);
  LBSQ_CHECK(moves_per_batch >= 0);
  LBSQ_CHECK(move_radius_mi >= 0.0);
  if (enabled()) {
    LBSQ_CHECK(inserts_per_batch + deletes_per_batch + moves_per_batch > 0);
  }
}

void SimConfig::Validate() const {
  LBSQ_CHECK(world_side_mi > 0.0);
  LBSQ_CHECK(warmup_min >= 0.0);
  LBSQ_CHECK(duration_min > 0.0);
  LBSQ_CHECK(speed_min_mph > 0.0 && speed_max_mph >= speed_min_mph);
  LBSQ_CHECK(street_block_mi > 0.0);
  LBSQ_CHECK(p2p_hops >= 1);
  LBSQ_CHECK(mixed_window_fraction >= 0.0 && mixed_window_fraction <= 1.0);
  LBSQ_CHECK(prefetch_radius_factor >= 1.0);
  LBSQ_CHECK(max_regions_per_host >= 1);
  LBSQ_CHECK(slots_per_second > 0.0);
  LBSQ_CHECK(min_correctness >= 0.0 && min_correctness <= 1.0);
  LBSQ_CHECK(threads >= 1);
  LBSQ_CHECK(events_per_epoch >= 1);
  LBSQ_CHECK(params.csize >= 1);
  LBSQ_CHECK(params.tx_range_m > 0.0);
  LBSQ_CHECK(params.knn_k >= 1.0);
  LBSQ_CHECK(shards >= 1);
  // Fault injection models one lossy channel; a multi-channel fault model
  // would be a different system. Sharded cache-invariant checking under
  // churn would additionally need history-retained sharded epochs.
  LBSQ_CHECK(shards == 1 || !fault.enabled());
  LBSQ_CHECK(shards == 1 || !(updates.enabled() && check_cache_invariant));
  fault.Validate();
  updates.Validate();
}

double SimConfig::Scale() const {
  return (world_side_mi * world_side_mi) / kPaperAreaSqMi;
}

int64_t SimConfig::ScaledMhCount() const {
  return std::max<int64_t>(
      1, static_cast<int64_t>(std::llround(params.mh_number * Scale())));
}

int64_t SimConfig::ScaledPoiCount() const {
  if (paper_window_geometry) {
    return std::max<int64_t>(
        1, static_cast<int64_t>(std::llround(params.poi_number)));
  }
  return std::max<int64_t>(
      1, static_cast<int64_t>(std::llround(params.poi_number * Scale())));
}

double SimConfig::ScaledQueriesPerMin() const {
  return params.query_per_min * Scale();
}

}  // namespace lbsq::sim
