#include "sim/simulator.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/check.h"
#include "sim/query_exec.h"
#include "sim/workload.h"
#include "spatial/generators.h"

namespace lbsq::sim {

Simulator::Simulator(const SimConfig& config)
    : config_(config),
      world_{0.0, 0.0, config.world_side_mi, config.world_side_mi},
      server_index_(8),
      peer_index_(world_,
                  std::max(config.params.tx_range_m * kMilesPerMeter,
                           config.world_side_mi / 256.0)),
      tx_range_mi_(config.params.tx_range_m * kMilesPerMeter) {
  config.Validate();

  Rng poi_rng(DeriveStreamSeed(config.seed, kStreamPois));
  std::vector<spatial::Poi> pois = spatial::GenerateUniformPois(
      &poi_rng, world_, config.ScaledPoiCount());
  server_index_.InsertAll(pois);
  system_ = std::make_unique<broadcast::BroadcastSystem>(
      std::move(pois), world_, config.broadcast);
  engine_ = std::make_unique<core::QueryEngine>(
      *system_, world_, EngineOptionsFromConfig(config));

  mobility_ = MakeMobilityModel(config, world_);
  const int64_t hosts = mobility_->num_hosts();
  caches_.reserve(static_cast<size_t>(hosts));
  for (int64_t i = 0; i < hosts; ++i) {
    caches_.emplace_back(config.params.csize, config.max_regions_per_host,
                         config.cache_policy);
  }
  positions_.resize(static_cast<size_t>(hosts));
}

void Simulator::SetObserver(obs::TraceSink* trace_sink,
                            MetricsRegistry* registry) {
  trace_sink_ = trace_sink;
  registry_ = registry;
}

void Simulator::CheckCacheInvariant(int64_t host) const {
  for (const core::VerifiedRegion& vr :
       caches_[static_cast<size_t>(host)].entries()) {
    const std::vector<spatial::Poi> truth =
        server_index_.WindowQuery(vr.region);
    // Every server POI inside the region must be cached.
    for (const spatial::Poi& poi : truth) {
      const bool present =
          std::any_of(vr.pois.begin(), vr.pois.end(),
                      [&poi](const spatial::Poi& p) { return p.id == poi.id; });
      LBSQ_CHECK(present);
    }
    // And nothing outside the region may be stored in this entry.
    for (const spatial::Poi& poi : vr.pois) {
      LBSQ_CHECK(vr.region.Contains(poi.pos));
    }
  }
}

void Simulator::ExecuteEvent(const QueryEvent& event, int64_t query_id,
                             SimMetrics* metrics) {
  const int64_t hosts = mobility_->num_hosts();
  // Advance every host and refresh the peer index. O(hosts) per query
  // event; positions between events are irrelevant to the metrics.
  for (int64_t i = 0; i < hosts; ++i) {
    positions_[static_cast<size_t>(i)] = mobility_->Position(i, event.time_min);
  }
  peer_index_.Rebuild(positions_);

  const geom::Point pos = positions_[static_cast<size_t>(event.host)];
  std::vector<core::PeerData> peers;
  const int peer_count = GatherPeers(
      peer_index_, positions_, event.host, tx_range_mi_, config_.p2p_hops,
      [this](int64_t id) { return caches_[static_cast<size_t>(id)].Share(); },
      &peers);
  const bool measured = event.time_min >= config_.warmup_min;
  if (measured) {
    metrics->peers_per_query.Add(peer_count);
    if (registry_ != nullptr) {
      registry_->Observe("peers_per_query", static_cast<double>(peer_count));
    }
  }

  // Record a trace only for measured queries that someone will read;
  // unmeasured (warm-up) queries never reach the sink, so recording them
  // would only cost time.
  obs::TraceRecorder* trace = nullptr;
  if (measured && trace_sink_ != nullptr) {
    recorder_.Reset(query_id, event.host, event.type == QueryType::kKnn
                                              ? "knn"
                                              : "window");
    trace = &recorder_;
  }

  const int64_t slot = static_cast<int64_t>(
      event.time_min * config_.slots_per_second * 60.0);
  if (event.type == QueryType::kKnn) {
    KnnQueryResult result =
        ExecuteKnnQuery(config_, *engine_, pos, event.k, slot,
                        std::move(peers), measured, query_id, trace,
                        &workspace_);
    caches_[static_cast<size_t>(event.host)].Insert(
        std::move(result.outcome.cacheable), pos, pos,
        mobility_->Heading(event.host));
    if (config_.check_cache_invariant) CheckCacheInvariant(event.host);
    if (measured) AccumulateKnn(result, metrics, registry_);
  } else {
    WindowQueryResult result =
        ExecuteWindowQuery(config_, *engine_, event.window, slot,
                           std::move(peers), measured, query_id, trace,
                           &workspace_);
    caches_[static_cast<size_t>(event.host)].Insert(
        std::move(result.outcome.cacheable), event.window.center(), pos,
        mobility_->Heading(event.host));
    if (config_.check_cache_invariant) CheckCacheInvariant(event.host);
    if (measured) AccumulateWindow(result, metrics, registry_);
  }
  if (trace != nullptr) trace_sink_->Append(*trace);
}

SimMetrics Simulator::Run() {
  trace_.clear();
  std::vector<QueryEvent> events = GenerateWorkload(config_, world_);
  SimMetrics metrics;
  for (size_t i = 0; i < events.size(); ++i) {
    ExecuteEvent(events[i], static_cast<int64_t>(i), &metrics);
  }
  if (config_.record_trace) trace_ = std::move(events);
  return metrics;
}

SimMetrics Simulator::Replay(const std::vector<QueryEvent>& events) {
  SimMetrics metrics;
  for (size_t i = 0; i < events.size(); ++i) {
    LBSQ_CHECK(events[i].host >= 0 && events[i].host < mobility_->num_hosts());
    ExecuteEvent(events[i], static_cast<int64_t>(i), &metrics);
  }
  return metrics;
}

}  // namespace lbsq::sim
