#include "sim/simulator.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "sim/query_exec.h"
#include "sim/workload.h"
#include "spatial/generators.h"

namespace lbsq::sim {

Simulator::Simulator(const SimConfig& config)
    : config_(config),
      world_{0.0, 0.0, config.world_side_mi, config.world_side_mi},
      server_index_(8),
      peer_index_(world_,
                  std::max(config.params.tx_range_m * kMilesPerMeter,
                           config.world_side_mi / 256.0)),
      tx_range_mi_(config.params.tx_range_m * kMilesPerMeter) {
  LBSQ_CHECK(config.world_side_mi > 0.0);
  LBSQ_CHECK(config.warmup_min >= 0.0);
  LBSQ_CHECK(config.duration_min > 0.0);

  Rng poi_rng(DeriveStreamSeed(config.seed, kStreamPois));
  std::vector<spatial::Poi> pois = spatial::GenerateUniformPois(
      &poi_rng, world_, config.ScaledPoiCount());
  server_index_.InsertAll(pois);
  system_ = std::make_unique<broadcast::BroadcastSystem>(
      std::move(pois), world_, config.broadcast);

  mobility_ = MakeMobilityModel(config, world_);
  const int64_t hosts = mobility_->num_hosts();
  caches_.reserve(static_cast<size_t>(hosts));
  for (int64_t i = 0; i < hosts; ++i) {
    caches_.emplace_back(config.params.csize, config.max_regions_per_host,
                         config.cache_policy);
  }
  positions_.resize(static_cast<size_t>(hosts));
}

void Simulator::CheckCacheInvariant(int64_t host) const {
  for (const core::VerifiedRegion& vr :
       caches_[static_cast<size_t>(host)].entries()) {
    const std::vector<spatial::Poi> truth =
        server_index_.WindowQuery(vr.region);
    // Every server POI inside the region must be cached.
    for (const spatial::Poi& poi : truth) {
      const bool present =
          std::any_of(vr.pois.begin(), vr.pois.end(),
                      [&poi](const spatial::Poi& p) { return p.id == poi.id; });
      LBSQ_CHECK(present);
    }
    // And nothing outside the region may be stored in this entry.
    for (const spatial::Poi& poi : vr.pois) {
      LBSQ_CHECK(vr.region.Contains(poi.pos));
    }
  }
}

void Simulator::ExecuteEvent(const QueryEvent& event, SimMetrics* metrics) {
  const int64_t hosts = mobility_->num_hosts();
  // Advance every host and refresh the peer index. O(hosts) per query
  // event; positions between events are irrelevant to the metrics.
  for (int64_t i = 0; i < hosts; ++i) {
    positions_[static_cast<size_t>(i)] = mobility_->Position(i, event.time_min);
  }
  peer_index_.Rebuild(positions_);

  const geom::Point pos = positions_[static_cast<size_t>(event.host)];
  std::vector<core::PeerData> peers;
  const int peer_count = GatherPeers(
      peer_index_, positions_, event.host, tx_range_mi_, config_.p2p_hops,
      [this](int64_t id) { return caches_[static_cast<size_t>(id)].Share(); },
      &peers);
  const bool measured = event.time_min >= config_.warmup_min;
  if (measured) metrics->peers_per_query.Add(peer_count);

  const int64_t slot = static_cast<int64_t>(
      event.time_min * config_.slots_per_second * 60.0);
  if (event.type == QueryType::kKnn) {
    KnnQueryResult result = ExecuteKnnQuery(config_, *system_, world_, pos,
                                            event.k, slot, peers, measured);
    caches_[static_cast<size_t>(event.host)].Insert(
        std::move(result.outcome.cacheable), pos, pos,
        mobility_->Heading(event.host));
    if (config_.check_cache_invariant) CheckCacheInvariant(event.host);
    if (measured) AccumulateKnn(result, metrics);
  } else {
    WindowQueryResult result = ExecuteWindowQuery(config_, *system_,
                                                  event.window, slot, peers,
                                                  measured);
    caches_[static_cast<size_t>(event.host)].Insert(
        std::move(result.outcome.cacheable), event.window.center(), pos,
        mobility_->Heading(event.host));
    if (config_.check_cache_invariant) CheckCacheInvariant(event.host);
    if (measured) AccumulateWindow(result, metrics);
  }
}

SimMetrics Simulator::Run() {
  trace_.clear();
  std::vector<QueryEvent> events = GenerateWorkload(config_, world_);
  SimMetrics metrics;
  for (const QueryEvent& event : events) {
    ExecuteEvent(event, &metrics);
  }
  if (config_.record_trace) trace_ = std::move(events);
  return metrics;
}

SimMetrics Simulator::Replay(const std::vector<QueryEvent>& events) {
  SimMetrics metrics;
  for (const QueryEvent& event : events) {
    LBSQ_CHECK(event.host >= 0 && event.host < mobility_->num_hosts());
    ExecuteEvent(event, &metrics);
  }
  return metrics;
}

}  // namespace lbsq::sim
