#include "sim/simulator.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/check.h"
#include "dynamic/dynamic_engine.h"
#include "sim/query_exec.h"
#include "sim/update_workload.h"
#include "sim/workload.h"
#include "spatial/generators.h"

namespace lbsq::sim {

Simulator::Simulator(const SimConfig& config)
    : config_(config),
      world_{0.0, 0.0, config.world_side_mi, config.world_side_mi},
      server_index_(8),
      peer_index_(world_,
                  std::max(config.params.tx_range_m * kMilesPerMeter,
                           config.world_side_mi / 256.0)),
      tx_range_mi_(config.params.tx_range_m * kMilesPerMeter) {
  config.Validate();

  Rng poi_rng(DeriveStreamSeed(config.seed, kStreamPois));
  std::vector<spatial::Poi> pois = spatial::GenerateUniformPois(
      &poi_rng, world_, config.ScaledPoiCount());
  server_index_.InsertAll(pois);
  base_insert_id_ = FirstInsertId(pois);
  dynamic::RebuildPolicy rebuild_policy;
  rebuild_policy.force_full = config.updates.force_full_rebuild;
  if (config.shards > 1) {
    sharded_world_ = std::make_unique<dynamic::ShardedWorld>(
        std::move(pois), world_, config.broadcast,
        EngineOptionsFromConfig(config), config.shards);
    sharded_world_->set_rebuild_policy(rebuild_policy);
    sharded_current_ = sharded_world_->Current();
  } else {
    // Under churn the cache invariant is epoch-relative, so the invariant
    // checker needs every historical snapshot; otherwise epochs are
    // reclaimed as soon as the last query unpins them.
    const bool retain_history =
        config.updates.enabled() && config.check_cache_invariant;
    versioner_ = std::make_unique<dynamic::WorldVersioner>(
        std::move(pois), world_, config.broadcast,
        EngineOptionsFromConfig(config), retain_history);
    versioner_->set_rebuild_policy(rebuild_policy);
    current_ = versioner_->Current();
  }

  mobility_ = MakeMobilityModel(config, world_);
  const int64_t hosts = mobility_->num_hosts();
  caches_.reserve(static_cast<size_t>(hosts));
  for (int64_t i = 0; i < hosts; ++i) {
    caches_.emplace_back(config.params.csize, config.max_regions_per_host,
                         config.cache_policy);
  }
  positions_.resize(static_cast<size_t>(hosts));
}

void Simulator::SetObserver(obs::TraceSink* trace_sink,
                            MetricsRegistry* registry) {
  trace_sink_ = trace_sink;
  registry_ = registry;
}

void Simulator::CheckCacheInvariant(int64_t host) const {
  for (const core::VerifiedRegion& vr :
       caches_[static_cast<size_t>(host)].entries()) {
    std::vector<spatial::Poi> truth;
    if (config_.updates.enabled()) {
      // Completeness is an epoch-relative guarantee: validate each entry
      // against the POI database of the epoch it was verified on.
      const std::shared_ptr<const dynamic::WorldEpoch> epoch =
          versioner_->EpochAt(vr.epoch);
      LBSQ_CHECK(epoch != nullptr);
      for (const spatial::Poi& poi : epoch->pois) {
        if (vr.region.Contains(poi.pos)) truth.push_back(poi);
      }
    } else {
      truth = server_index_.WindowQuery(vr.region);
    }
    // Every server POI inside the region must be cached.
    for (const spatial::Poi& poi : truth) {
      const bool present =
          std::any_of(vr.pois.begin(), vr.pois.end(),
                      [&poi](const spatial::Poi& p) { return p.id == poi.id; });
      LBSQ_CHECK(present);
    }
    // And nothing outside the region may be stored in this entry.
    for (const spatial::Poi& poi : vr.pois) {
      LBSQ_CHECK(vr.region.Contains(poi.pos));
    }
  }
}

void Simulator::ExecuteEvent(const QueryEvent& event, int64_t query_id,
                             SimMetrics* metrics) {
  const int64_t hosts = mobility_->num_hosts();
  // Advance every host and patch the peer index (a full Rebuild only on the
  // first event; afterwards most hosts stay in their grid cell between
  // events). O(hosts) per query event; positions between events are
  // irrelevant to the metrics.
  for (int64_t i = 0; i < hosts; ++i) {
    positions_[static_cast<size_t>(i)] = mobility_->Position(i, event.time_min);
  }
  peer_index_.ApplyMoves(positions_);

  const geom::Point pos = positions_[static_cast<size_t>(event.host)];
  std::vector<core::PeerData> peers;
  const int peer_count = GatherPeers(
      peer_index_, positions_, event.host, tx_range_mi_, config_.p2p_hops,
      [this](int64_t id) { return caches_[static_cast<size_t>(id)].Share(); },
      &peers);
  if (config_.updates.enabled()) {
    // Gathered peer regions may predate the pinned epoch; keep only those
    // whose completeness survives the separating update batches. Both
    // deployments run the same per-region decision procedure against their
    // (identical) global update logs.
    dynamic::RevalidationStats revalidation;
    if (config_.shards > 1) {
      auto dirty = [this](const geom::Rect& rect, uint64_t lo, uint64_t hi) {
        return sharded_world_->RegionDirty(rect, lo, hi);
      };
      revalidation = dynamic::RevalidatePeerDataWith(
          dirty, sharded_current_->id, &peers);
    } else {
      revalidation =
          dynamic::RevalidatePeerData(*versioner_, current_->id, &peers);
    }
    if (event.time_min >= config_.warmup_min) {
      metrics->regions_revalidated += revalidation.revalidated;
      metrics->regions_stale_rejected += revalidation.rejected;
    }
  }
  const bool measured = event.time_min >= config_.warmup_min;
  if (measured) {
    metrics->peers_per_query.Add(peer_count);
    if (registry_ != nullptr) {
      registry_->Observe("peers_per_query", static_cast<double>(peer_count));
    }
  }

  // Record a trace only for measured queries that someone will read;
  // unmeasured (warm-up) queries never reach the sink, so recording them
  // would only cost time.
  obs::TraceRecorder* trace = nullptr;
  if (measured && trace_sink_ != nullptr) {
    recorder_.Reset(query_id, event.host, event.type == QueryType::kKnn
                                              ? "knn"
                                              : "window");
    trace = &recorder_;
  }

  const int64_t slot = static_cast<int64_t>(
      event.time_min * config_.slots_per_second * 60.0);
  const bool sharded = config_.shards > 1;
  if (event.type == QueryType::kKnn) {
    KnnQueryResult result =
        sharded ? ExecuteKnnQuery(config_, *sharded_current_->engine,
                                  sharded_current_->pois, pos, event.k, slot,
                                  std::move(peers), measured, query_id, trace,
                                  sharded_workspace_)
                : ExecuteKnnQuery(config_, *current_->engine, pos, event.k,
                                  slot, std::move(peers), measured, query_id,
                                  trace, &workspace_);
    // Clean shards still carry the epoch stamp of their last rebuild; what
    // this query verified is consistent with the pinned *global* epoch,
    // which is what peer revalidation consults.
    if (sharded) result.outcome.cacheable.epoch = sharded_current_->id;
    caches_[static_cast<size_t>(event.host)].Insert(
        std::move(result.outcome.cacheable), pos, pos,
        mobility_->Heading(event.host));
    if (config_.check_cache_invariant) CheckCacheInvariant(event.host);
    if (measured) AccumulateKnn(result, metrics, registry_);
  } else {
    WindowQueryResult result =
        sharded ? ExecuteWindowQuery(config_, *sharded_current_->engine,
                                     sharded_current_->pois, event.window,
                                     slot, std::move(peers), measured,
                                     query_id, trace, sharded_workspace_)
                : ExecuteWindowQuery(config_, *current_->engine, event.window,
                                     slot, std::move(peers), measured,
                                     query_id, trace, &workspace_);
    if (sharded) result.outcome.cacheable.epoch = sharded_current_->id;
    caches_[static_cast<size_t>(event.host)].Insert(
        std::move(result.outcome.cacheable), event.window.center(), pos,
        mobility_->Heading(event.host));
    if (config_.check_cache_invariant) CheckCacheInvariant(event.host);
    if (measured) AccumulateWindow(result, metrics, registry_);
  }
  if (trace != nullptr) trace_sink_->Append(*trace);
}

void Simulator::MaybeApplyUpdates(size_t event_index, double event_time_min,
                                  SimMetrics* metrics) {
  if (!config_.updates.enabled()) return;
  const size_t interval =
      static_cast<size_t>(config_.updates.interval_events);
  if (event_index == 0 || event_index % interval != 0) return;
  // Batch k (1-based) produces epoch k; k is the event index divided by the
  // interval, so the epoch sequence depends only on (config, seed, index) —
  // never on engine, shard, or thread count. The sharded world's global POI
  // mirror matches the unsharded epoch's POI set exactly, so both
  // deployments generate identical batches.
  const uint64_t k = event_index / interval;
  if (config_.shards > 1) {
    std::vector<dynamic::PoiUpdate> batch =
        GenerateUpdateBatch(config_.updates, config_.seed, k,
                            sharded_current_->pois, world_, base_insert_id_);
    const int64_t before = sharded_world_->updates_applied();
    const uint64_t published = sharded_world_->Apply(std::move(batch));
    LBSQ_CHECK(published == k);
    sharded_current_ = sharded_world_->Current();
    if (event_time_min >= config_.warmup_min) {
      metrics->epochs_published += 1;
      metrics->updates_applied += sharded_world_->updates_applied() - before;
    }
    return;
  }
  std::vector<dynamic::PoiUpdate> batch =
      GenerateUpdateBatch(config_.updates, config_.seed, k, current_->pois,
                          world_, base_insert_id_);
  const int64_t before = versioner_->updates_applied();
  const uint64_t published = versioner_->Apply(std::move(batch));
  LBSQ_CHECK(published == k);
  current_ = versioner_->Current();
  if (event_time_min >= config_.warmup_min) {
    metrics->epochs_published += 1;
    metrics->updates_applied += versioner_->updates_applied() - before;
  }
}

SimMetrics Simulator::Run() {
  trace_.clear();
  std::vector<QueryEvent> events = GenerateWorkload(config_, world_);
  SimMetrics metrics;
  for (size_t i = 0; i < events.size(); ++i) {
    MaybeApplyUpdates(i, events[i].time_min, &metrics);
    ExecuteEvent(events[i], static_cast<int64_t>(i), &metrics);
  }
  if (config_.record_trace) trace_ = std::move(events);
  return metrics;
}

SimMetrics Simulator::Replay(const std::vector<QueryEvent>& events) {
  // Update batches are keyed by event index; replaying a dynamic run on an
  // already-advanced world cannot reproduce the recording.
  if (config_.updates.enabled()) {
    LBSQ_CHECK((config_.shards > 1 ? sharded_world_->latest_epoch()
                                   : versioner_->latest_epoch()) == 0);
  }
  SimMetrics metrics;
  for (size_t i = 0; i < events.size(); ++i) {
    LBSQ_CHECK(events[i].host >= 0 && events[i].host < mobility_->num_hosts());
    MaybeApplyUpdates(i, events[i].time_min, &metrics);
    ExecuteEvent(events[i], static_cast<int64_t>(i), &metrics);
  }
  return metrics;
}

}  // namespace lbsq::sim
