#include "sim/simulator.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "onair/onair_knn.h"
#include "onair/onair_window.h"
#include "sim/manhattan_mobility.h"
#include "spatial/generators.h"

namespace lbsq::sim {

Simulator::Simulator(const SimConfig& config)
    : config_(config),
      world_{0.0, 0.0, config.world_side_mi, config.world_side_mi},
      rng_(config.seed),
      server_index_(8),
      peer_index_(world_,
                  std::max(config.params.tx_range_m * kMilesPerMeter,
                           config.world_side_mi / 256.0)),
      tx_range_mi_(config.params.tx_range_m * kMilesPerMeter) {
  LBSQ_CHECK(config.world_side_mi > 0.0);
  LBSQ_CHECK(config.warmup_min >= 0.0);
  LBSQ_CHECK(config.duration_min > 0.0);

  Rng poi_rng = rng_.Fork();
  std::vector<spatial::Poi> pois = spatial::GenerateUniformPois(
      &poi_rng, world_, config.ScaledPoiCount());
  server_index_.InsertAll(pois);
  system_ = std::make_unique<broadcast::BroadcastSystem>(
      std::move(pois), world_, config.broadcast);

  const int64_t hosts = config.ScaledMhCount();
  // Speeds in miles/minute. Under the paper-geometry window scaling, host
  // speeds shrink linearly with the world so cache entries age (drift out of
  // relevance) at the paper's rate relative to the window geometry.
  const double speed_scale =
      config.paper_window_geometry
          ? config.world_side_mi / kPaperWorldSideMiles
          : 1.0;
  const double speed_min = config.speed_min_mph / 60.0 * speed_scale;
  const double speed_max = config.speed_max_mph / 60.0 * speed_scale;
  if (config.mobility == MobilityType::kManhattanGrid) {
    mobility_ = std::make_unique<ManhattanGridModel>(
        world_, hosts, config.street_block_mi, speed_min, speed_max,
        rng_.Fork());
  } else {
    mobility_ = std::make_unique<RandomWaypointModel>(
        world_, hosts, speed_min, speed_max, rng_.Fork());
  }
  caches_.reserve(static_cast<size_t>(hosts));
  for (int64_t i = 0; i < hosts; ++i) {
    caches_.emplace_back(config.params.csize, config.max_regions_per_host,
                         config.cache_policy);
  }
  positions_.resize(static_cast<size_t>(hosts));
}

int Simulator::GatherPeers(int64_t querier, geom::Point pos,
                           std::vector<core::PeerData>* out) {
  // Breadth-first flood over the radio connectivity graph up to the
  // configured hop limit (1 = the paper's single-hop sharing).
  (void)pos;  // positions_[querier] == pos; the flood reads positions_.
  std::vector<bool> visited(static_cast<size_t>(mobility_->num_hosts()),
                            false);
  visited[static_cast<size_t>(querier)] = true;
  std::vector<int64_t> frontier = {querier};
  std::vector<int64_t> reached;
  std::vector<int64_t> scratch;
  for (int hop = 0; hop < config_.p2p_hops && !frontier.empty(); ++hop) {
    std::vector<int64_t> next;
    for (int64_t node : frontier) {
      scratch.clear();
      peer_index_.QueryDisc(positions_[static_cast<size_t>(node)],
                            tx_range_mi_, &scratch);
      for (int64_t id : scratch) {
        if (visited[static_cast<size_t>(id)]) continue;
        visited[static_cast<size_t>(id)] = true;
        next.push_back(id);
        reached.push_back(id);
      }
    }
    frontier.swap(next);
  }
  for (int64_t id : reached) {
    core::PeerData data = caches_[static_cast<size_t>(id)].Share();
    if (!data.empty()) out->push_back(std::move(data));
  }
  return static_cast<int>(reached.size());
}

int Simulator::SampleK() {
  const double mean = config_.params.knn_k;
  return static_cast<int>(std::max<int64_t>(1, rng_.Poisson(mean)));
}

geom::Rect Simulator::SampleWindow(geom::Point pos) {
  // Mean window area = window_pct% of the search space; sizes are
  // exponential around the mean, clamped to a sane range.
  const double mean_fraction = config_.params.window_pct / 100.0;
  double fraction = rng_.Exponential(1.0 / mean_fraction);
  fraction = std::clamp(fraction, mean_fraction / 10.0, 4.0 * mean_fraction);
  const double side = std::sqrt(fraction) * config_.world_side_mi;
  // Window center at a normally distributed distance from the host, in a
  // uniform direction, clamped inside the world. Under the paper-geometry
  // scaling mode the distance shrinks linearly with the world so the
  // window/center geometry matches the paper's proportions.
  double mean_distance = config_.params.distance_mi;
  if (config_.paper_window_geometry) {
    mean_distance *= config_.world_side_mi / kPaperWorldSideMiles;
  }
  const double distance =
      std::abs(rng_.Normal(mean_distance, mean_distance / 3.0));
  const double angle = rng_.Uniform(0.0, 2.0 * M_PI);
  geom::Point center{pos.x + distance * std::cos(angle),
                     pos.y + distance * std::sin(angle)};
  center.x = std::clamp(center.x, world_.x1, world_.x2);
  center.y = std::clamp(center.y, world_.y1, world_.y2);
  return geom::Rect::CenteredSquare(center, side / 2.0);
}

void Simulator::CheckCacheInvariant(int64_t host) const {
  for (const core::VerifiedRegion& vr :
       caches_[static_cast<size_t>(host)].entries()) {
    const std::vector<spatial::Poi> truth =
        server_index_.WindowQuery(vr.region);
    // Every server POI inside the region must be cached.
    for (const spatial::Poi& poi : truth) {
      const bool present =
          std::any_of(vr.pois.begin(), vr.pois.end(),
                      [&poi](const spatial::Poi& p) { return p.id == poi.id; });
      LBSQ_CHECK(present);
    }
    // And nothing outside the region may be stored in this entry.
    for (const spatial::Poi& poi : vr.pois) {
      LBSQ_CHECK(vr.region.Contains(poi.pos));
    }
  }
}

void Simulator::ExecuteKnn(int64_t querier, geom::Point pos, int k,
                           int64_t slot,
                           const std::vector<core::PeerData>& peers,
                           bool measured, SimMetrics* metrics) {
  core::SbnnOptions options;
  options.k = k;
  options.accept_approximate = config_.accept_approximate;
  options.min_correctness = config_.min_correctness;
  options.use_filtering = config_.use_filtering;
  options.tighten_with_index_bound = config_.tighten_with_index_bound;
  options.prefetch_radius_factor = config_.prefetch_radius_factor;
  const double poi_density =
      static_cast<double>(system_->pois().size()) / world_.area();

  core::SbnnOutcome outcome =
      core::RunSbnn(pos, options, peers, poi_density, *system_, slot);

  // Correctness accounting against the brute-force oracle (every query).
  const std::vector<spatial::PoiDistance> truth =
      spatial::BruteForceKnn(system_->pois(), pos, options.k);
  bool exact = truth.size() == outcome.neighbors.size();
  for (size_t i = 0; exact && i < truth.size(); ++i) {
    // Compare distances (ids can differ under exact ties).
    exact = std::abs(truth[i].distance - outcome.neighbors[i].distance) < 1e-9;
  }
  if (outcome.resolved_by != core::ResolvedBy::kPeersApproximate &&
      config_.check_answers) {
    LBSQ_CHECK(exact);
  }

  caches_[static_cast<size_t>(querier)].Insert(
      outcome.cacheable, pos, pos, mobility_->Heading(querier));
  if (config_.check_cache_invariant) CheckCacheInvariant(querier);

  if (!measured) return;
  ++metrics->queries;
  metrics->verified_per_query.Add(outcome.nnv.heap.verified_count());
  if (outcome.resolved_by == core::ResolvedBy::kPeersApproximate) {
    if (exact) ++metrics->approx_exact;
  } else if (!exact) {
    ++metrics->answer_errors;
  }
  switch (outcome.resolved_by) {
    case core::ResolvedBy::kPeersVerified:
      ++metrics->solved_verified;
      break;
    case core::ResolvedBy::kPeersApproximate:
      ++metrics->solved_approximate;
      break;
    case core::ResolvedBy::kBroadcast:
      ++metrics->solved_broadcast;
      metrics->broadcast_latency.Add(
          static_cast<double>(outcome.stats.access_latency));
      metrics->broadcast_tuning.Add(
          static_cast<double>(outcome.stats.tuning_time));
      metrics->buckets_read.Add(
          static_cast<double>(outcome.stats.buckets_read));
      metrics->buckets_skipped.Add(
          static_cast<double>(outcome.buckets_skipped));
      break;
  }
  // What the pure on-air baseline would have cost for this query.
  const onair::OnAirKnnResult baseline =
      onair::OnAirKnn(*system_, pos, options.k, slot);
  metrics->baseline_latency.Add(
      static_cast<double>(baseline.stats.access_latency));
  metrics->baseline_tuning.Add(
      static_cast<double>(baseline.stats.tuning_time));
}

void Simulator::ExecuteWindow(int64_t querier, geom::Point pos,
                              const geom::Rect& window, int64_t slot,
                              const std::vector<core::PeerData>& peers,
                              bool measured, SimMetrics* metrics) {
  core::SbwqOptions options;
  options.retrieval = config_.retrieval;
  options.use_window_reduction = config_.use_window_reduction;

  core::SbwqOutcome outcome =
      core::RunSbwq(window, options, peers, *system_, slot);

  // Correctness accounting against the brute-force oracle (every query).
  const std::vector<spatial::Poi> truth =
      spatial::BruteForceWindow(system_->pois(), window);
  const bool exact = truth == outcome.pois;
  if (config_.check_answers) {
    LBSQ_CHECK(exact);
  }

  caches_[static_cast<size_t>(querier)].Insert(
      outcome.cacheable, window.center(), pos, mobility_->Heading(querier));
  if (config_.check_cache_invariant) CheckCacheInvariant(querier);

  if (!measured) return;
  ++metrics->queries;
  if (!exact) ++metrics->answer_errors;
  metrics->residual_fraction.Add(outcome.residual_fraction);
  if (outcome.resolved_by_peers) {
    ++metrics->solved_verified;
  } else {
    ++metrics->solved_broadcast;
    metrics->broadcast_latency.Add(
        static_cast<double>(outcome.stats.access_latency));
    metrics->broadcast_tuning.Add(
        static_cast<double>(outcome.stats.tuning_time));
    metrics->buckets_read.Add(static_cast<double>(outcome.stats.buckets_read));
  }
  const onair::OnAirWindowResult baseline =
      onair::OnAirWindow(*system_, window, slot, config_.retrieval);
  metrics->baseline_latency.Add(
      static_cast<double>(baseline.stats.access_latency));
  metrics->baseline_tuning.Add(
      static_cast<double>(baseline.stats.tuning_time));
}

void Simulator::ExecuteEvent(const QueryEvent& event, SimMetrics* metrics) {
  const int64_t hosts = mobility_->num_hosts();
  // Advance every host and refresh the peer index. O(hosts) per query
  // event; positions between events are irrelevant to the metrics.
  for (int64_t i = 0; i < hosts; ++i) {
    positions_[static_cast<size_t>(i)] = mobility_->Position(i, event.time_min);
  }
  peer_index_.Rebuild(positions_);

  const geom::Point pos = positions_[static_cast<size_t>(event.host)];
  std::vector<core::PeerData> peers;
  const int peer_count = GatherPeers(event.host, pos, &peers);
  const bool measured = event.time_min >= config_.warmup_min;
  if (measured) metrics->peers_per_query.Add(peer_count);

  const int64_t slot = static_cast<int64_t>(
      event.time_min * config_.slots_per_second * 60.0);
  if (event.type == QueryType::kKnn) {
    ExecuteKnn(event.host, pos, event.k, slot, peers, measured, metrics);
  } else {
    ExecuteWindow(event.host, pos, event.window, slot, peers, measured,
                  metrics);
  }
}

SimMetrics Simulator::Run() {
  SimMetrics metrics;
  trace_.clear();
  const double rate = std::max(config_.ScaledQueriesPerMin(), 1e-6);
  const double end = config_.warmup_min + config_.duration_min;
  const int64_t hosts = mobility_->num_hosts();

  double t = 0.0;
  for (;;) {
    t += rng_.Exponential(rate);
    if (t > end) break;
    QueryEvent event;
    event.time_min = t;
    event.host =
        static_cast<int64_t>(rng_.NextBelow(static_cast<uint64_t>(hosts)));
    QueryType type = config_.query_type;
    if (type == QueryType::kMixed) {
      type = rng_.NextBool(config_.mixed_window_fraction)
                 ? QueryType::kWindow
                 : QueryType::kKnn;
    }
    event.type = type;
    if (type == QueryType::kKnn) {
      event.k = SampleK();
    } else {
      // The window is centered relative to the host's position at query
      // time; position the host first.
      event.window = SampleWindow(mobility_->Position(event.host, t));
    }
    if (config_.record_trace) trace_.push_back(event);
    ExecuteEvent(event, &metrics);
  }
  return metrics;
}

SimMetrics Simulator::Replay(const std::vector<QueryEvent>& events) {
  SimMetrics metrics;
  for (const QueryEvent& event : events) {
    LBSQ_CHECK(event.host >= 0 && event.host < mobility_->num_hosts());
    ExecuteEvent(event, &metrics);
  }
  return metrics;
}

}  // namespace lbsq::sim
