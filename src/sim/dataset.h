#ifndef LBSQ_SIM_DATASET_H_
#define LBSQ_SIM_DATASET_H_

#include <cstdint>
#include <string>

#include "sim/config.h"

/// \file
/// The dataset/deployment identity shared by every tool. `lbsq_server`,
/// `lbsq_sim`, `lbsq_store_build`, and `lbsq_load` must all agree on what
/// the dataset *is* — the Table-3 parameter set, the world side, the POI
/// seed, the shard count — for their digests to be comparable. DatasetSpec
/// hoists those flags out of the per-tool parsers into one struct with one
/// parser, one validator (the `EngineOptions::Validate()` pattern), and one
/// digest that names the dataset in store headers.

namespace lbsq::sim {

/// The dataset/deployment knobs shared across tools. Field defaults match
/// the tools' historical defaults (LA City at bench scale).
struct DatasetSpec {
  /// Table-3 parameter set; --tx/--csize/--k/--window-pct/--pois edit it in
  /// flag order, exactly as the tools always did.
  ParameterSet params = LosAngelesCity();
  /// World side in miles (3.0; 20 = the paper's full scale).
  double world_side_mi = 3.0;
  /// POI-stream RNG seed.
  uint64_t seed = 1;
  /// Hilbert-range broadcast channels.
  int shards = 1;
  /// §3.3.3 data filtering (--no-filtering clears it).
  bool use_filtering = true;

  /// Aborts (LBSQ_CHECK) unless the spec is internally consistent:
  /// positive world side and POI count, shards >= 1, k >= 1.
  void Validate() const;

  /// Copies the spec's fields into `*config`, leaving every non-dataset
  /// knob (run lengths, mobility, faults, ...) untouched.
  void ApplyTo(SimConfig* config) const;

  /// POIs the spec's world actually holds (density-scaled).
  int64_t ScaledPoiCount() const;

  /// FNV-1a digest over everything that determines the generated POI set
  /// and its sharded broadcast organization: parameter-set name, POI
  /// count, world side, seed, shards. Stamped into store headers and
  /// verified on open.
  uint64_t Digest() const;
};

/// Result of offering one argv token to the dataset parser.
enum class DatasetFlagResult {
  /// Not a dataset flag — the tool's own parser should handle it.
  kNotDatasetFlag,
  /// Consumed into the spec.
  kParsed,
  /// A dataset flag with a bad value; `*error` describes it.
  kError,
};

/// Parses one `--flag[=value]` token into `*spec`. Handles --params,
/// --world, --seed, --shards, --pois, --k, --tx, --csize, --window-pct,
/// --no-filtering. Tools call this first for each argv token and fall
/// through to their own flags on kNotDatasetFlag.
DatasetFlagResult ParseDatasetFlag(const char* arg, DatasetSpec* spec,
                                   std::string* error);

/// The usage block describing the shared dataset flags (embedded in each
/// tool's --help output so the vocabulary is documented once).
const char* DatasetFlagsHelp();

}  // namespace lbsq::sim

#endif  // LBSQ_SIM_DATASET_H_
