#include "sim/trace.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

namespace lbsq::sim {

namespace {
constexpr char kHeader[] = "lbsq-trace v1";
}  // namespace

std::string SerializeTrace(const std::vector<QueryEvent>& events) {
  std::string out = kHeader;
  out += '\n';
  char line[256];
  for (const QueryEvent& e : events) {
    if (e.type == QueryType::kKnn) {
      std::snprintf(line, sizeof(line), "K %a %lld %d\n", e.time_min,
                    static_cast<long long>(e.host), e.k);
    } else {
      std::snprintf(line, sizeof(line), "W %a %lld %a %a %a %a\n", e.time_min,
                    static_cast<long long>(e.host), e.window.x1, e.window.y1,
                    e.window.x2, e.window.y2);
    }
    out += line;
  }
  return out;
}

bool ParseTrace(const std::string& text, std::vector<QueryEvent>* out) {
  std::istringstream stream(text);
  std::string header;
  if (!std::getline(stream, header) || header != kHeader) return false;
  out->clear();
  std::string line;
  while (std::getline(stream, line)) {
    if (line.empty()) continue;
    QueryEvent event;
    long long host = 0;
    if (line[0] == 'K') {
      int k = 0;
      if (std::sscanf(line.c_str(), "K %la %lld %d", &event.time_min, &host,
                      &k) != 3 ||
          k < 1) {
        return false;
      }
      event.type = QueryType::kKnn;
      event.k = k;
    } else if (line[0] == 'W') {
      if (std::sscanf(line.c_str(), "W %la %lld %la %la %la %la",
                      &event.time_min, &host, &event.window.x1,
                      &event.window.y1, &event.window.x2,
                      &event.window.y2) != 6) {
        return false;
      }
      event.type = QueryType::kWindow;
    } else {
      return false;
    }
    if (event.time_min < 0.0 || host < 0) return false;
    event.host = host;
    out->push_back(event);
  }
  return true;
}

bool SaveTrace(const std::string& path,
               const std::vector<QueryEvent>& events) {
  std::ofstream file(path);
  if (!file) return false;
  file << SerializeTrace(events);
  return static_cast<bool>(file);
}

bool LoadTrace(const std::string& path, std::vector<QueryEvent>* out) {
  std::ifstream file(path);
  if (!file) return false;
  std::stringstream buffer;
  buffer << file.rdbuf();
  return ParseTrace(buffer.str(), out);
}

}  // namespace lbsq::sim
