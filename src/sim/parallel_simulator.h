#ifndef LBSQ_SIM_PARALLEL_SIMULATOR_H_
#define LBSQ_SIM_PARALLEL_SIMULATOR_H_

#include <memory>
#include <optional>
#include <vector>

#include "broadcast/system.h"
#include "common/metrics_registry.h"
#include "common/observability.h"
#include "common/thread_pool.h"
#include "core/peer_cache.h"
#include "core/query_engine.h"
#include "core/query_workspace.h"
#include "core/sharded_query_engine.h"
#include "dynamic/sharded_world.h"
#include "dynamic/world_versioner.h"
#include "sim/config.h"
#include "sim/metrics.h"
#include "sim/mobility.h"
#include "sim/query_exec.h"
#include "sim/trace.h"
#include "spatial/grid_index.h"

/// \file
/// The parallel multi-client simulation engine. The sequential Simulator
/// executes one query event at a time against the live caches of every
/// host; this engine processes events in *epochs* of
/// `SimConfig::events_per_epoch` consecutive events:
///
///  1. At the epoch barrier, every host's shareable cache content is
///     snapshotted. The snapshot — like the broadcast schedule and air
///     index — is immutable for the whole epoch, so workers read it
///     lock-free.
///  2. Events are sharded across workers by querying host
///     (`host % threads`); each worker executes its events in global event
///     order against the snapshot, writing only (a) the querying host's own
///     cache — which it exclusively owns — and (b) the event's private
///     result slot.
///  3. After the join barrier, per-event results are folded into the run's
///     `SimMetrics` in event order on one thread.
///
/// Determinism: every random draw comes from a counter-based stream keyed
/// by host or event (never from a shared generator), each host's cache
/// receives exactly the same inserts in the same order regardless of which
/// worker owns it, and the event-order fold performs the same floating-
/// point additions in the same sequence at any thread count. The same
/// config + seed therefore yields bitwise-identical metrics for threads =
/// 1, 2, 8, ... — and with `events_per_epoch = 1` the snapshot is always
/// fresh, reproducing the sequential engine's metrics exactly.

namespace lbsq::sim {

/// Thread-parallel simulation engine. Construct, Run() once, read metrics.
class ParallelSimulator {
 public:
  explicit ParallelSimulator(const SimConfig& config);
  ~ParallelSimulator();

  ParallelSimulator(const ParallelSimulator&) = delete;
  ParallelSimulator& operator=(const ParallelSimulator&) = delete;

  /// Attaches run-level observability (either may be null). Workers record
  /// each measured query's events into the event's private result slot; the
  /// epoch fold appends them to `trace_sink` — and feeds `registry` — in
  /// global event order, so the output bytes are independent of the thread
  /// count. Call before Run().
  void SetObserver(obs::TraceSink* trace_sink, MetricsRegistry* registry);

  /// Generates the workload for the configured seed and executes it with
  /// `config.threads` workers. Returns post-warm-up metrics.
  SimMetrics Run();

  /// Executes a recorded workload (same trace format as the sequential
  /// engine; traces are interchangeable between the two).
  SimMetrics Replay(const std::vector<QueryEvent>& events);

  /// Events recorded by the last Run() under record_trace.
  const std::vector<QueryEvent>& trace() const { return trace_; }

  /// The broadcast channel of the currently pinned epoch (epoch 0 — the
  /// full static world — unless updates are enabled and have fired).
  /// Single-channel deployments only (config.shards == 1).
  const broadcast::BroadcastSystem& system() const {
    return *current_->system;
  }
  /// The simulated world rectangle.
  const geom::Rect& world() const { return world_; }
  /// Host caches (for inspection in tests).
  const std::vector<core::PeerCache>& caches() const { return caches_; }
  /// The query engine of the currently pinned epoch (shards == 1 only).
  const core::QueryEngine& engine() const { return *current_->engine; }
  /// The epoch store (epoch 0 only when updates are disabled); shards == 1
  /// only.
  const dynamic::WorldVersioner& versioner() const { return *versioner_; }
  /// The sharded world (null unless config.shards > 1).
  const dynamic::ShardedWorld* sharded_world() const {
    return sharded_world_.get();
  }

 private:
  /// Everything a worker thread owns privately: its fleet replica, its
  /// position buffer, and its peer index. Nothing here is ever touched by
  /// another thread.
  struct Worker {
    std::unique_ptr<MobilityModel> mobility;
    std::vector<geom::Point> positions;
    spatial::GridIndex peer_index;
    /// Per-thread query scratch + broadcast-cycle cover memo; reused by
    /// every event this worker executes. `workspace` serves the
    /// single-channel deployment, `sharded_workspace` the multi-shard one
    /// (only the configured deployment's scratch ever grows).
    core::QueryWorkspace workspace;
    core::ShardedQueryWorkspace sharded_workspace;

    Worker(const MobilityModel& proto, const geom::Rect& world,
           double cell_size);
  };

  /// Per-event output, written into a private slot by the owning worker and
  /// folded into SimMetrics in event order after the epoch's join barrier.
  struct EventResult {
    bool measured = false;
    int peer_count = 0;
    /// Cross-epoch revalidation counts of this event's gathered peer data
    /// (zero unless updates are enabled); folded in event order.
    int64_t regions_revalidated = 0;
    int64_t regions_stale_rejected = 0;
    std::optional<KnnQueryResult> knn;
    std::optional<WindowQueryResult> window;
    /// Span/counter events of this query (only populated when a trace sink
    /// is attached and the event is measured); appended at the fold.
    obs::TraceRecorder trace;
    bool traced = false;
  };

  /// Executes one event on `worker` (runs on a worker thread). `query_id`
  /// is the event's global workload index (the trace key). Reads the epoch
  /// snapshot; writes only caches_[event.host] and the returned slot.
  EventResult ExecuteEvent(Worker* worker, const QueryEvent& event,
                           int64_t query_id);

  /// Validates the cache completeness invariant of `host` against the full
  /// POI set (check_cache_invariant mode). Brute force instead of the
  /// R-tree: the tree's node-access counter is mutable state that worker
  /// threads must not share. Under churn each entry is checked against the
  /// snapshot of its own epoch.
  void CheckCacheInvariant(int64_t host) const;

  /// Applies the deterministic update batch due before event `event_index`
  /// (a no-op unless updates are enabled and the index is a nonzero
  /// multiple of the interval) and re-pins the published epoch. Called only
  /// between chunks — chunk boundaries are clamped to update boundaries, so
  /// the pinned epoch is immutable while workers run.
  void MaybeApplyUpdates(size_t event_index, double event_time_min,
                         SimMetrics* metrics);

  SimMetrics Execute(const std::vector<QueryEvent>& events);

  SimConfig config_;
  geom::Rect world_;
  /// Single-channel deployment (config.shards == 1): the epoch store and
  /// the pinned epoch every event of the current chunk executes against
  /// (re-pinned at update boundaries — always between chunks). Null at
  /// shards > 1.
  std::unique_ptr<dynamic::WorldVersioner> versioner_;
  std::shared_ptr<const dynamic::WorldEpoch> current_;
  /// Sharded deployment (config.shards > 1): the sharded epoch store and
  /// its pinned epoch, with the same re-pin discipline. Null at shards == 1.
  std::unique_ptr<dynamic::ShardedWorld> sharded_world_;
  std::shared_ptr<const dynamic::ShardedEpoch> sharded_current_;
  /// First id handed to inserted POIs (fixed at construction).
  int64_t base_insert_id_ = 0;
  std::unique_ptr<MobilityModel> mobility_proto_;
  std::vector<core::PeerCache> caches_;
  /// Shareable cache content of every host as of the last epoch barrier.
  std::vector<core::PeerData> snapshot_;
  std::vector<Worker> workers_;
  std::unique_ptr<ThreadPool> pool_;  // null when threads == 1
  std::vector<QueryEvent> trace_;
  double tx_range_mi_;
  obs::TraceSink* trace_sink_ = nullptr;
  MetricsRegistry* registry_ = nullptr;
};

}  // namespace lbsq::sim

#endif  // LBSQ_SIM_PARALLEL_SIMULATOR_H_
