#include "sim/mobility.h"

#include <cmath>

#include "common/check.h"

namespace lbsq::sim {

RandomWaypointModel::RandomWaypointModel(const geom::Rect& world,
                                         int64_t num_hosts, double speed_min,
                                         double speed_max, uint64_t seed)
    : world_(world), speed_min_(speed_min), speed_max_(speed_max) {
  LBSQ_CHECK(!world.empty());
  LBSQ_CHECK(num_hosts >= 1);
  LBSQ_CHECK(speed_min > 0.0 && speed_min <= speed_max);
  legs_.resize(static_cast<size_t>(num_hosts));
  rngs_.reserve(static_cast<size_t>(num_hosts));
  for (int64_t i = 0; i < num_hosts; ++i) {
    rngs_.emplace_back(DeriveStreamSeed(seed, static_cast<uint64_t>(i)));
    Rng& rng = rngs_.back();
    const geom::Point start{rng.Uniform(world.x1, world.x2),
                            rng.Uniform(world.y1, world.y2)};
    StartNewLeg(i, start, 0.0);
  }
}

void RandomWaypointModel::StartNewLeg(int64_t host, geom::Point from,
                                      double t) {
  Rng& rng = rngs_[static_cast<size_t>(host)];
  Leg& leg = legs_[static_cast<size_t>(host)];
  leg.from = from;
  leg.to = geom::Point{rng.Uniform(world_.x1, world_.x2),
                       rng.Uniform(world_.y1, world_.y2)};
  const double speed = rng.Uniform(speed_min_, speed_max_);
  const double distance = geom::Distance(leg.from, leg.to);
  leg.depart_time = t;
  leg.arrive_time = t + distance / speed;
}

geom::Point RandomWaypointModel::Position(int64_t host, double t) {
  LBSQ_CHECK(host >= 0 && host < num_hosts());
  Leg* leg = &legs_[static_cast<size_t>(host)];
  LBSQ_CHECK(t >= leg->depart_time);
  while (t > leg->arrive_time) {
    StartNewLeg(host, leg->to, leg->arrive_time);
  }
  const double span = leg->arrive_time - leg->depart_time;
  if (span <= 0.0) return leg->to;
  const double frac = (t - leg->depart_time) / span;
  return leg->from + (leg->to - leg->from) * frac;
}

geom::Point RandomWaypointModel::Heading(int64_t host) const {
  LBSQ_CHECK(host >= 0 && host < num_hosts());
  const Leg& leg = legs_[static_cast<size_t>(host)];
  const geom::Point d = leg.to - leg.from;
  const double norm = geom::Norm(d);
  if (norm <= 0.0) return geom::Point{0.0, 0.0};
  return d * (1.0 / norm);
}

}  // namespace lbsq::sim
