#include "sim/query_exec.h"

#include <cmath>

#include "common/check.h"
#include "onair/onair_knn.h"
#include "onair/onair_window.h"
#include "spatial/generators.h"

namespace lbsq::sim {

KnnQueryResult ExecuteKnnQuery(const SimConfig& config,
                               const broadcast::BroadcastSystem& system,
                               const geom::Rect& world, geom::Point pos, int k,
                               int64_t slot,
                               const std::vector<core::PeerData>& peers,
                               bool measured) {
  core::SbnnOptions options;
  options.k = k;
  options.accept_approximate = config.accept_approximate;
  options.min_correctness = config.min_correctness;
  options.use_filtering = config.use_filtering;
  options.tighten_with_index_bound = config.tighten_with_index_bound;
  options.prefetch_radius_factor = config.prefetch_radius_factor;
  const double poi_density =
      static_cast<double>(system.pois().size()) / world.area();

  KnnQueryResult result;
  result.outcome = core::RunSbnn(pos, options, peers, poi_density, system,
                                 slot);

  // Correctness accounting against the brute-force oracle (every query).
  const std::vector<spatial::PoiDistance> truth =
      spatial::BruteForceKnn(system.pois(), pos, options.k);
  bool exact = truth.size() == result.outcome.neighbors.size();
  for (size_t i = 0; exact && i < truth.size(); ++i) {
    // Compare distances (ids can differ under exact ties).
    exact = std::abs(truth[i].distance -
                     result.outcome.neighbors[i].distance) < 1e-9;
  }
  result.exact = exact;
  if (result.outcome.resolved_by != core::ResolvedBy::kPeersApproximate &&
      config.check_answers) {
    LBSQ_CHECK(exact);
  }

  if (measured) {
    // What the pure on-air baseline would have cost for this query.
    const onair::OnAirKnnResult baseline =
        onair::OnAirKnn(system, pos, options.k, slot);
    result.baseline_latency = baseline.stats.access_latency;
    result.baseline_tuning = baseline.stats.tuning_time;
  }
  return result;
}

WindowQueryResult ExecuteWindowQuery(const SimConfig& config,
                                     const broadcast::BroadcastSystem& system,
                                     const geom::Rect& window, int64_t slot,
                                     const std::vector<core::PeerData>& peers,
                                     bool measured) {
  core::SbwqOptions options;
  options.retrieval = config.retrieval;
  options.use_window_reduction = config.use_window_reduction;

  WindowQueryResult result;
  result.outcome = core::RunSbwq(window, options, peers, system, slot);

  // Correctness accounting against the brute-force oracle (every query).
  const std::vector<spatial::Poi> truth =
      spatial::BruteForceWindow(system.pois(), window);
  result.exact = truth == result.outcome.pois;
  if (config.check_answers) {
    LBSQ_CHECK(result.exact);
  }

  if (measured) {
    const onair::OnAirWindowResult baseline =
        onair::OnAirWindow(system, window, slot, config.retrieval);
    result.baseline_latency = baseline.stats.access_latency;
    result.baseline_tuning = baseline.stats.tuning_time;
  }
  return result;
}

void AccumulateKnn(const KnnQueryResult& result, SimMetrics* metrics) {
  const core::SbnnOutcome& outcome = result.outcome;
  ++metrics->queries;
  metrics->verified_per_query.Add(outcome.nnv.heap.verified_count());
  if (outcome.resolved_by == core::ResolvedBy::kPeersApproximate) {
    if (result.exact) ++metrics->approx_exact;
  } else if (!result.exact) {
    ++metrics->answer_errors;
  }
  switch (outcome.resolved_by) {
    case core::ResolvedBy::kPeersVerified:
      ++metrics->solved_verified;
      break;
    case core::ResolvedBy::kPeersApproximate:
      ++metrics->solved_approximate;
      break;
    case core::ResolvedBy::kBroadcast:
      ++metrics->solved_broadcast;
      metrics->broadcast_latency.Add(
          static_cast<double>(outcome.stats.access_latency));
      metrics->broadcast_tuning.Add(
          static_cast<double>(outcome.stats.tuning_time));
      metrics->buckets_read.Add(
          static_cast<double>(outcome.stats.buckets_read));
      metrics->buckets_skipped.Add(
          static_cast<double>(outcome.buckets_skipped));
      break;
  }
  metrics->baseline_latency.Add(static_cast<double>(result.baseline_latency));
  metrics->baseline_tuning.Add(static_cast<double>(result.baseline_tuning));
}

void AccumulateWindow(const WindowQueryResult& result, SimMetrics* metrics) {
  const core::SbwqOutcome& outcome = result.outcome;
  ++metrics->queries;
  if (!result.exact) ++metrics->answer_errors;
  metrics->residual_fraction.Add(outcome.residual_fraction);
  if (outcome.resolved_by_peers) {
    ++metrics->solved_verified;
  } else {
    ++metrics->solved_broadcast;
    metrics->broadcast_latency.Add(
        static_cast<double>(outcome.stats.access_latency));
    metrics->broadcast_tuning.Add(
        static_cast<double>(outcome.stats.tuning_time));
    metrics->buckets_read.Add(static_cast<double>(outcome.stats.buckets_read));
  }
  metrics->baseline_latency.Add(static_cast<double>(result.baseline_latency));
  metrics->baseline_tuning.Add(static_cast<double>(result.baseline_tuning));
}

int GatherPeers(const spatial::GridIndex& peer_index,
                const std::vector<geom::Point>& positions, int64_t querier,
                double tx_range, int hops,
                const std::function<core::PeerData(int64_t)>& share,
                std::vector<core::PeerData>* out) {
  std::vector<bool> visited(positions.size(), false);
  visited[static_cast<size_t>(querier)] = true;
  std::vector<int64_t> frontier = {querier};
  std::vector<int64_t> reached;
  std::vector<int64_t> scratch;
  for (int hop = 0; hop < hops && !frontier.empty(); ++hop) {
    std::vector<int64_t> next;
    for (int64_t node : frontier) {
      scratch.clear();
      peer_index.QueryDisc(positions[static_cast<size_t>(node)], tx_range,
                           &scratch);
      for (int64_t id : scratch) {
        if (visited[static_cast<size_t>(id)]) continue;
        visited[static_cast<size_t>(id)] = true;
        next.push_back(id);
        reached.push_back(id);
      }
    }
    frontier.swap(next);
  }
  for (int64_t id : reached) {
    core::PeerData data = share(id);
    if (!data.empty()) out->push_back(std::move(data));
  }
  return static_cast<int>(reached.size());
}

}  // namespace lbsq::sim
