#include "sim/query_exec.h"

#include <bit>
#include <cmath>
#include <utility>

#include "common/check.h"
#include "common/rng.h"
#include "fault/peer_faults.h"
#include "kernels/poi_slab.h"
#include "onair/onair_knn.h"
#include "onair/onair_window.h"
#include "spatial/generators.h"

namespace lbsq::sim {

namespace {

// Applies the configured peer-data corruption on the querier's copy of the
// gathered peer data, drawing from the query's own fault stream.
void MaybeCorruptPeers(const core::QueryEngine& engine, int64_t query_id,
                       std::vector<core::PeerData>* peers) {
  const fault::FaultConfig& fault = engine.options().fault;
  if (!fault.enabled() || !fault.peer.enabled()) return;
  Rng rng(fault::PeerStreamSeed(fault.seed, static_cast<uint64_t>(query_id)));
  fault::CorruptPeerData(fault.peer, &rng, peers);
}

// The kind-independent tail of the SimMetrics update (baselines, fault and
// screening bookkeeping), in the canonical order — called after the
// kind-specific accumulators so the overall update sequence is unchanged.
void AccumulateCommonMetrics(const core::QueryResultCommon& common,
                             int64_t baseline_latency, int64_t baseline_tuning,
                             int64_t regions_rejected, SimMetrics* metrics) {
  metrics->baseline_latency.Add(static_cast<double>(baseline_latency));
  metrics->baseline_tuning.Add(static_cast<double>(baseline_tuning));
  if (common.degraded) ++metrics->degraded_queries;
  metrics->fault_losses += common.fault_losses;
  metrics->fault_corruptions += common.fault_corruptions;
  if (common.fault_deadline_hit) ++metrics->fault_deadline_hits;
  metrics->regions_rejected += regions_rejected;
}

// Registry counterpart of AccumulateCommonMetrics. Fault counters only
// materialize on fault activity, so the registry's exported metrics stay
// identical when injection is disabled.
void AccumulateCommonRegistry(const core::QueryResultCommon& common,
                              int64_t baseline_latency,
                              int64_t regions_rejected,
                              MetricsRegistry* registry) {
  registry->Observe("baseline_latency",
                    static_cast<double>(baseline_latency));
  if (common.degraded) registry->IncrementCounter("degraded_queries");
  if (common.fault_losses > 0) {
    registry->IncrementCounter("fault_losses", common.fault_losses);
  }
  if (common.fault_corruptions > 0) {
    registry->IncrementCounter("fault_corruptions", common.fault_corruptions);
  }
  if (common.fault_deadline_hit) {
    registry->IncrementCounter("fault_deadline_hits");
  }
  if (regions_rejected > 0) {
    registry->IncrementCounter("regions_rejected", regions_rejected);
  }
}

}  // namespace

core::EngineOptions EngineOptionsFromConfig(const SimConfig& config) {
  core::EngineOptions options;
  options.sbnn.k = std::max(1, static_cast<int>(config.params.knn_k));
  options.sbnn.accept_approximate = config.accept_approximate;
  options.sbnn.min_correctness = config.min_correctness;
  options.sbnn.use_filtering = config.use_filtering;
  options.sbnn.tighten_with_index_bound = config.tighten_with_index_bound;
  options.sbnn.prefetch_radius_factor = config.prefetch_radius_factor;
  options.sbwq.retrieval = config.retrieval;
  options.sbwq.use_window_reduction = config.use_window_reduction;
  options.fault = config.fault;
  return options;
}

KnnQueryResult ExecuteKnnQuery(const SimConfig& config,
                               const core::QueryEngine& engine,
                               geom::Point pos, int k, int64_t slot,
                               std::vector<core::PeerData> peers,
                               bool measured, int64_t query_id,
                               obs::TraceRecorder* trace,
                               core::QueryWorkspace* workspace) {
  const int k_eff = k > 0 ? k : engine.options().sbnn.k;
  MaybeCorruptPeers(engine, query_id, &peers);

  core::QueryRequest request;
  request.kind = core::QueryKind::kKnn;
  request.position = pos;
  request.k = k_eff;
  request.slot = slot;
  // `peers` (taken by value) backs the request's span for the duration of
  // the Execute call.
  request.peers = peers;
  request.trace = trace;
  request.fault_stream = static_cast<uint64_t>(query_id);

  KnnQueryResult result;
  core::QueryOutcome executed;
  if (workspace != nullptr) {
    engine.Execute(request, *workspace, &executed);
  } else {
    executed = engine.Execute(request);
  }
  result.outcome = std::move(*executed.knn);
  result.regions_rejected = executed.regions_rejected;

  // Correctness accounting against the brute-force oracle (every query).
  // With a per-worker workspace the oracle's distance scan over the full
  // POI set runs through that worker's slab kernels, allocation-free.
  std::vector<spatial::PoiDistance> truth;
  if (workspace != nullptr) {
    spatial::BruteForceKnn(engine.system().pois(), pos, k_eff,
                           &workspace->slab, &truth);
  } else {
    spatial::BruteForceKnn(engine.system().pois(), pos, k_eff, &truth);
  }
  bool exact = truth.size() == result.outcome.neighbors.size();
  for (size_t i = 0; exact && i < truth.size(); ++i) {
    // Compare distances (ids can differ under exact ties).
    exact = std::abs(truth[i].distance -
                     result.outcome.neighbors[i].distance) < 1e-9;
  }
  result.exact = exact;
  if (result.outcome.resolved_by != core::ResolvedBy::kPeersApproximate &&
      config.check_answers && !config.fault.enabled()) {
    LBSQ_CHECK(exact);
  }

  if (measured) {
    // What the pure on-air baseline would have cost for this query.
    const onair::OnAirKnnResult baseline =
        onair::OnAirKnn(engine.system(), pos, k_eff, slot);
    result.baseline_latency = baseline.stats.access_latency;
    result.baseline_tuning = baseline.stats.tuning_time;
  }
  return result;
}

WindowQueryResult ExecuteWindowQuery(const SimConfig& config,
                                     const core::QueryEngine& engine,
                                     const geom::Rect& window, int64_t slot,
                                     std::vector<core::PeerData> peers,
                                     bool measured, int64_t query_id,
                                     obs::TraceRecorder* trace,
                                     core::QueryWorkspace* workspace) {
  MaybeCorruptPeers(engine, query_id, &peers);

  core::QueryRequest request;
  request.kind = core::QueryKind::kWindow;
  request.window = window;
  request.slot = slot;
  request.peers = peers;
  request.trace = trace;
  request.fault_stream = static_cast<uint64_t>(query_id);

  WindowQueryResult result;
  core::QueryOutcome executed;
  if (workspace != nullptr) {
    engine.Execute(request, *workspace, &executed);
  } else {
    executed = engine.Execute(request);
  }
  result.outcome = std::move(*executed.window);
  result.regions_rejected = executed.regions_rejected;

  // Correctness accounting against the brute-force oracle (every query).
  std::vector<spatial::Poi> truth;
  if (workspace != nullptr) {
    spatial::BruteForceWindow(engine.system().pois(), window,
                              &workspace->slab, &truth);
  } else {
    kernels::SlabScratch scratch;
    spatial::BruteForceWindow(engine.system().pois(), window, &scratch,
                              &truth);
  }
  result.exact = truth == result.outcome.pois;
  if (config.check_answers && !config.fault.enabled()) {
    LBSQ_CHECK(result.exact);
  }

  if (measured) {
    const onair::OnAirWindowResult baseline = onair::OnAirWindow(
        engine.system(), window, slot, config.retrieval);
    result.baseline_latency = baseline.stats.access_latency;
    result.baseline_tuning = baseline.stats.tuning_time;
  }
  return result;
}

KnnQueryResult ExecuteKnnQuery(const SimConfig& config,
                               const core::ShardedQueryEngine& engine,
                               const std::vector<spatial::Poi>& oracle_pois,
                               geom::Point pos, int k, int64_t slot,
                               std::vector<core::PeerData> peers, bool measured,
                               int64_t query_id, obs::TraceRecorder* trace,
                               core::ShardedQueryWorkspace& workspace) {
  const int k_eff = k > 0 ? k : engine.options().sbnn.k;
  // No peer corruption: fault injection is structurally disallowed at
  // N > 1 (SimConfig::Validate), and a 1-shard sharded run must stay
  // byte-identical to the unsharded engine — which it is, since with fault
  // disabled MaybeCorruptPeers is a no-op there too.

  core::QueryRequest request;
  request.kind = core::QueryKind::kKnn;
  request.position = pos;
  request.k = k_eff;
  request.slot = slot;
  request.peers = peers;
  request.trace = trace;
  request.fault_stream = static_cast<uint64_t>(query_id);

  KnnQueryResult result;
  core::QueryOutcome executed;
  engine.Execute(request, workspace, &executed);
  result.outcome = std::move(*executed.knn);
  result.regions_rejected = executed.regions_rejected;

  // Correctness accounting against the brute-force oracle over the global
  // POI set (the sharded engine holds it only in per-shard pieces).
  std::vector<spatial::PoiDistance> truth;
  spatial::BruteForceKnn(oracle_pois, pos, k_eff, &truth);
  bool exact = truth.size() == result.outcome.neighbors.size();
  for (size_t i = 0; exact && i < truth.size(); ++i) {
    exact = std::abs(truth[i].distance -
                     result.outcome.neighbors[i].distance) < 1e-9;
  }
  result.exact = exact;
  if (result.outcome.resolved_by != core::ResolvedBy::kPeersApproximate &&
      config.check_answers) {
    LBSQ_CHECK(exact);
  }

  if (measured) {
    // The baseline is the same deployment queried peerlessly: the
    // multi-channel on-air cost, merged under the latency = max /
    // tuning = sum conventions.
    core::QueryRequest baseline = request;
    baseline.peers = {};
    baseline.trace = nullptr;
    core::QueryOutcome priced;
    engine.Execute(baseline, workspace, &priced);
    result.baseline_latency = priced.knn->stats.access_latency;
    result.baseline_tuning = priced.knn->stats.tuning_time;
  }
  return result;
}

WindowQueryResult ExecuteWindowQuery(
    const SimConfig& config, const core::ShardedQueryEngine& engine,
    const std::vector<spatial::Poi>& oracle_pois, const geom::Rect& window,
    int64_t slot, std::vector<core::PeerData> peers, bool measured,
    int64_t query_id, obs::TraceRecorder* trace,
    core::ShardedQueryWorkspace& workspace) {
  core::QueryRequest request;
  request.kind = core::QueryKind::kWindow;
  request.window = window;
  request.slot = slot;
  request.peers = peers;
  request.trace = trace;
  request.fault_stream = static_cast<uint64_t>(query_id);

  WindowQueryResult result;
  core::QueryOutcome executed;
  engine.Execute(request, workspace, &executed);
  result.outcome = std::move(*executed.window);
  result.regions_rejected = executed.regions_rejected;

  std::vector<spatial::Poi> truth;
  kernels::SlabScratch scratch;
  spatial::BruteForceWindow(oracle_pois, window, &scratch, &truth);
  result.exact = truth == result.outcome.pois;
  if (config.check_answers) {
    LBSQ_CHECK(result.exact);
  }

  if (measured) {
    core::QueryRequest baseline = request;
    baseline.peers = {};
    baseline.trace = nullptr;
    core::QueryOutcome priced;
    engine.Execute(baseline, workspace, &priced);
    result.baseline_latency = priced.window->stats.access_latency;
    result.baseline_tuning = priced.window->stats.tuning_time;
  }
  return result;
}

void AccumulateKnn(const KnnQueryResult& result, SimMetrics* metrics,
                   MetricsRegistry* registry) {
  const core::SbnnOutcome& outcome = result.outcome;
  ++metrics->queries;
  // Answer digest: ids + distance bit patterns in the canonical sorted
  // answer order, terminated by the answer size (so adjacent answers cannot
  // alias). Folded here — in event order — it witnesses shard-count
  // invariance of the answer plane.
  uint64_t digest = metrics->answer_digest;
  for (const spatial::PoiDistance& n : outcome.neighbors) {
    digest = DigestFold(digest, static_cast<uint64_t>(n.poi.id));
    digest = DigestFold(digest, std::bit_cast<uint64_t>(n.distance));
  }
  metrics->answer_digest =
      DigestFold(digest, static_cast<uint64_t>(outcome.neighbors.size()));
  metrics->verified_per_query.Add(outcome.nnv.heap.verified_count());
  if (outcome.resolved_by == core::ResolvedBy::kPeersApproximate) {
    if (result.exact) ++metrics->approx_exact;
  } else if (!result.exact && !outcome.degraded) {
    // Degraded queries are best-effort by contract; counting them as answer
    // errors would conflate channel failures with soundness bugs.
    ++metrics->answer_errors;
  }
  switch (outcome.resolved_by) {
    case core::ResolvedBy::kPeersVerified:
      ++metrics->solved_verified;
      break;
    case core::ResolvedBy::kPeersApproximate:
      ++metrics->solved_approximate;
      break;
    case core::ResolvedBy::kBroadcast:
      ++metrics->solved_broadcast;
      metrics->broadcast_latency.Add(
          static_cast<double>(outcome.stats.access_latency));
      metrics->broadcast_tuning.Add(
          static_cast<double>(outcome.stats.tuning_time));
      metrics->buckets_read.Add(
          static_cast<double>(outcome.stats.buckets_read));
      metrics->buckets_skipped.Add(
          static_cast<double>(outcome.buckets_skipped));
      break;
  }
  AccumulateCommonMetrics(outcome, result.baseline_latency,
                          result.baseline_tuning, result.regions_rejected,
                          metrics);

  if (registry != nullptr) {
    registry->IncrementCounter("queries");
    const bool broadcast =
        outcome.resolved_by == core::ResolvedBy::kBroadcast;
    registry->IncrementCounter(
        outcome.resolved_by == core::ResolvedBy::kPeersVerified
            ? "solved_verified"
            : outcome.resolved_by == core::ResolvedBy::kPeersApproximate
                  ? "solved_approximate"
                  : "solved_broadcast");
    if (broadcast) {
      registry->Observe("access_latency",
                        static_cast<double>(outcome.stats.access_latency));
      registry->Observe("tuning_time",
                        static_cast<double>(outcome.stats.tuning_time));
      registry->Observe("buckets_read",
                        static_cast<double>(outcome.stats.buckets_read));
      registry->Observe("buckets_skipped",
                        static_cast<double>(outcome.buckets_skipped));
    }
    // Peer hits count as zero-latency — the distribution behind the paper's
    // headline mean (MeanLatencyAllQueries).
    registry->Observe(
        "access_latency_all",
        broadcast ? static_cast<double>(outcome.stats.access_latency) : 0.0);
    AccumulateCommonRegistry(outcome, result.baseline_latency,
                             result.regions_rejected, registry);
  }
}

void AccumulateWindow(const WindowQueryResult& result, SimMetrics* metrics,
                      MetricsRegistry* registry) {
  const core::SbwqOutcome& outcome = result.outcome;
  ++metrics->queries;
  // See AccumulateKnn — window answers are id sets in canonical id order.
  uint64_t digest = metrics->answer_digest;
  for (const spatial::Poi& p : outcome.pois) {
    digest = DigestFold(digest, static_cast<uint64_t>(p.id));
  }
  metrics->answer_digest =
      DigestFold(digest, static_cast<uint64_t>(outcome.pois.size()));
  if (!result.exact && !outcome.degraded) ++metrics->answer_errors;
  metrics->residual_fraction.Add(outcome.residual_fraction);
  if (outcome.resolved_by_peers) {
    ++metrics->solved_verified;
  } else {
    ++metrics->solved_broadcast;
    metrics->broadcast_latency.Add(
        static_cast<double>(outcome.stats.access_latency));
    metrics->broadcast_tuning.Add(
        static_cast<double>(outcome.stats.tuning_time));
    metrics->buckets_read.Add(static_cast<double>(outcome.stats.buckets_read));
  }
  AccumulateCommonMetrics(outcome, result.baseline_latency,
                          result.baseline_tuning, result.regions_rejected,
                          metrics);

  if (registry != nullptr) {
    registry->IncrementCounter("queries");
    registry->IncrementCounter(outcome.resolved_by_peers ? "solved_verified"
                                                         : "solved_broadcast");
    registry->Observe("residual_fraction", outcome.residual_fraction);
    if (!outcome.resolved_by_peers) {
      registry->Observe("access_latency",
                        static_cast<double>(outcome.stats.access_latency));
      registry->Observe("tuning_time",
                        static_cast<double>(outcome.stats.tuning_time));
      registry->Observe("buckets_read",
                        static_cast<double>(outcome.stats.buckets_read));
    }
    registry->Observe(
        "access_latency_all",
        outcome.resolved_by_peers
            ? 0.0
            : static_cast<double>(outcome.stats.access_latency));
    AccumulateCommonRegistry(outcome, result.baseline_latency,
                             result.regions_rejected, registry);
  }
}

int GatherPeers(const spatial::GridIndex& peer_index,
                const std::vector<geom::Point>& positions, int64_t querier,
                double tx_range, int hops,
                const std::function<core::PeerData(int64_t)>& share,
                std::vector<core::PeerData>* out) {
  std::vector<bool> visited(positions.size(), false);
  visited[static_cast<size_t>(querier)] = true;
  std::vector<int64_t> frontier = {querier};
  std::vector<int64_t> reached;
  std::vector<int64_t> scratch;
  for (int hop = 0; hop < hops && !frontier.empty(); ++hop) {
    std::vector<int64_t> next;
    for (int64_t node : frontier) {
      scratch.clear();
      peer_index.QueryDisc(positions[static_cast<size_t>(node)], tx_range,
                           &scratch);
      for (int64_t id : scratch) {
        if (visited[static_cast<size_t>(id)]) continue;
        visited[static_cast<size_t>(id)] = true;
        next.push_back(id);
        reached.push_back(id);
      }
    }
    frontier.swap(next);
  }
  for (int64_t id : reached) {
    core::PeerData data = share(id);
    if (!data.empty()) out->push_back(std::move(data));
  }
  return static_cast<int>(reached.size());
}

}  // namespace lbsq::sim
