#include "sim/manhattan_mobility.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace lbsq::sim {

ManhattanGridModel::ManhattanGridModel(const geom::Rect& world,
                                       int64_t num_hosts, double block,
                                       double speed_min, double speed_max,
                                       uint64_t seed)
    : world_(world), speed_min_(speed_min), speed_max_(speed_max) {
  LBSQ_CHECK(!world.empty());
  LBSQ_CHECK(num_hosts >= 1);
  LBSQ_CHECK(block > 0.0);
  LBSQ_CHECK(speed_min > 0.0 && speed_min <= speed_max);
  // At least a 2 x 2 street grid.
  block_ = std::min({block, world.width() / 2.0, world.height() / 2.0});
  cells_x_ = static_cast<int>(std::floor(world.width() / block_));
  cells_y_ = static_cast<int>(std::floor(world.height() / block_));
  LBSQ_CHECK(cells_x_ >= 2 && cells_y_ >= 2);

  hosts_.resize(static_cast<size_t>(num_hosts));
  rngs_.reserve(static_cast<size_t>(num_hosts));
  for (int64_t i = 0; i < num_hosts; ++i) {
    rngs_.emplace_back(DeriveStreamSeed(seed, static_cast<uint64_t>(i)));
    Rng& rng = rngs_.back();
    HostState& host = hosts_[static_cast<size_t>(i)];
    host.ix = static_cast<int>(rng.NextBelow(static_cast<uint64_t>(cells_x_ + 1)));
    host.iy = static_cast<int>(rng.NextBelow(static_cast<uint64_t>(cells_y_ + 1)));
    // Any in-bounds initial direction.
    host.dx = 0;
    host.dy = 0;
    PickDirection(&host, &rng);
    StartLeg(&host, &rng, 0.0);
  }
}

geom::Point ManhattanGridModel::Intersection(int ix, int iy) const {
  return geom::Point{world_.x1 + block_ * static_cast<double>(ix),
                     world_.y1 + block_ * static_cast<double>(iy)};
}

void ManhattanGridModel::PickDirection(HostState* host, Rng* rng) const {
  struct Option {
    int dx;
    int dy;
    double weight;
  };
  std::vector<Option> options;
  auto in_bounds = [this, host](int dx, int dy) {
    const int nx = host->ix + dx;
    const int ny = host->iy + dy;
    return nx >= 0 && nx <= cells_x_ && ny >= 0 && ny <= cells_y_;
  };
  const bool moving = host->dx != 0 || host->dy != 0;
  if (moving) {
    // Straight, left, right relative to the incoming direction.
    const int sx = host->dx, sy = host->dy;
    const int lx = -sy, ly = sx;   // left turn
    const int rx = sy, ry = -sx;   // right turn
    if (in_bounds(sx, sy)) options.push_back({sx, sy, 0.5});
    if (in_bounds(lx, ly)) options.push_back({lx, ly, 0.25});
    if (in_bounds(rx, ry)) options.push_back({rx, ry, 0.25});
    if (options.empty() && in_bounds(-sx, -sy)) {
      options.push_back({-sx, -sy, 1.0});  // dead end: U-turn
    }
  } else {
    for (const auto& [dx, dy] :
         {std::pair{1, 0}, {-1, 0}, {0, 1}, {0, -1}}) {
      if (in_bounds(dx, dy)) options.push_back({dx, dy, 0.25});
    }
  }
  LBSQ_CHECK(!options.empty());
  double total = 0.0;
  for (const Option& o : options) total += o.weight;
  double pick = rng->Uniform(0.0, total);
  for (const Option& o : options) {
    pick -= o.weight;
    if (pick <= 0.0) {
      host->dx = o.dx;
      host->dy = o.dy;
      return;
    }
  }
  host->dx = options.back().dx;
  host->dy = options.back().dy;
}

void ManhattanGridModel::StartLeg(HostState* host, Rng* rng, double t) const {
  const double speed = rng->Uniform(speed_min_, speed_max_);
  host->depart_time = t;
  host->arrive_time = t + block_ / speed;
}

geom::Point ManhattanGridModel::Position(int64_t host_id, double t) {
  LBSQ_CHECK(host_id >= 0 && host_id < num_hosts());
  HostState& host = hosts_[static_cast<size_t>(host_id)];
  Rng& rng = rngs_[static_cast<size_t>(host_id)];
  LBSQ_CHECK(t >= host.depart_time);
  while (t > host.arrive_time) {
    host.ix += host.dx;
    host.iy += host.dy;
    const double arrived = host.arrive_time;
    PickDirection(&host, &rng);
    StartLeg(&host, &rng, arrived);
  }
  const geom::Point from = Intersection(host.ix, host.iy);
  const double span = host.arrive_time - host.depart_time;
  const double frac = span > 0.0 ? (t - host.depart_time) / span : 1.0;
  return geom::Point{from.x + block_ * frac * static_cast<double>(host.dx),
                     from.y + block_ * frac * static_cast<double>(host.dy)};
}

geom::Point ManhattanGridModel::Heading(int64_t host_id) const {
  LBSQ_CHECK(host_id >= 0 && host_id < num_hosts());
  const HostState& host = hosts_[static_cast<size_t>(host_id)];
  return geom::Point{static_cast<double>(host.dx),
                     static_cast<double>(host.dy)};
}

}  // namespace lbsq::sim
