#ifndef LBSQ_SIM_WORKLOAD_H_
#define LBSQ_SIM_WORKLOAD_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/config.h"
#include "sim/mobility.h"
#include "sim/trace.h"

/// \file
/// Deterministic workload generation shared by the sequential and the
/// parallel simulation engines. All randomness is drawn from fixed,
/// counter-based sub-streams of `SimConfig::seed` (see DeriveStreamSeed):
/// the POI layout, every host's trajectory, the Poisson arrival process,
/// and each host's query parameters each own an independent stream. Two
/// engines configured with the same seed therefore agree on the entire
/// world and query workload bit-for-bit, regardless of thread count — the
/// foundation of the parallel engine's determinism guarantee.

namespace lbsq::sim {

/// Fixed sub-stream identifiers of `SimConfig::seed`. Changing these (or
/// the order of draws within a stream) changes every seeded run, so they
/// are part of the reproducibility contract.
inline constexpr uint64_t kStreamPois = 1;
inline constexpr uint64_t kStreamMobility = 2;
inline constexpr uint64_t kStreamArrivals = 3;
inline constexpr uint64_t kStreamQueryParams = 4;
inline constexpr uint64_t kStreamUpdates = 5;

/// Builds the configured mobility model over `world`: per-host streams are
/// derived from `(seed, kStreamMobility)`, speeds are scaled per the
/// paper-geometry rules. Both engines and the workload generator construct
/// identical fleets through this factory.
std::unique_ptr<MobilityModel> MakeMobilityModel(const SimConfig& config,
                                                 const geom::Rect& world);

/// Samples the full query workload of a run: Poisson arrival times over
/// [0, warmup + duration), the querying host and query type per event (from
/// the arrivals stream), and the per-event parameters — k for kNN events,
/// the query window for window events — from the *querying host's* own
/// parameter stream. Events are returned in time order. Deterministic given
/// the config; independent of engine and thread count.
std::vector<QueryEvent> GenerateWorkload(const SimConfig& config,
                                         const geom::Rect& world);

}  // namespace lbsq::sim

#endif  // LBSQ_SIM_WORKLOAD_H_
