#include "sim/update_workload.h"

#include <algorithm>

#include "common/rng.h"
#include "sim/workload.h"

namespace lbsq::sim {

namespace {

double ClampTo(double v, double lo, double hi) {
  return std::min(std::max(v, lo), hi);
}

}  // namespace

int64_t FirstInsertId(const std::vector<spatial::Poi>& initial) {
  int64_t max_id = -1;
  for (const spatial::Poi& poi : initial) max_id = std::max(max_id, poi.id);
  return max_id + 1;
}

std::vector<dynamic::PoiUpdate> GenerateUpdateBatch(
    const UpdateWorkloadConfig& config, uint64_t seed, uint64_t batch_index,
    const std::vector<spatial::Poi>& snapshot, const geom::Rect& world,
    int64_t base_insert_id) {
  Rng rng(DeriveStreamSeed(DeriveStreamSeed(seed, kStreamUpdates),
                           batch_index));
  std::vector<dynamic::PoiUpdate> updates;
  updates.reserve(static_cast<size_t>(config.deletes_per_batch) +
                  config.moves_per_batch + config.inserts_per_batch);

  // Victims for deletes and moves, drawn without replacement so a batch
  // never issues two operations against the same POI. Draw order (deletes
  // first, then moves) is part of the reproducibility contract.
  const size_t wanted = static_cast<size_t>(config.deletes_per_batch) +
                        static_cast<size_t>(config.moves_per_batch);
  std::vector<size_t> victims;
  if (wanted > 0 && !snapshot.empty()) {
    std::vector<size_t> pool(snapshot.size());
    for (size_t i = 0; i < pool.size(); ++i) pool[i] = i;
    const size_t take = std::min(wanted, pool.size());
    victims.reserve(take);
    for (size_t i = 0; i < take; ++i) {
      const size_t j = i + static_cast<size_t>(rng.NextBelow(pool.size() - i));
      std::swap(pool[i], pool[j]);
      victims.push_back(pool[i]);
    }
  }

  size_t next_victim = 0;
  for (int i = 0; i < config.deletes_per_batch; ++i) {
    if (next_victim >= victims.size()) break;
    const spatial::Poi& poi = snapshot[victims[next_victim++]];
    dynamic::PoiUpdate u;
    u.kind = dynamic::PoiUpdate::Kind::kDelete;
    u.id = poi.id;
    updates.push_back(u);
  }
  for (int i = 0; i < config.moves_per_batch; ++i) {
    if (next_victim >= victims.size()) break;
    const spatial::Poi& poi = snapshot[victims[next_victim++]];
    dynamic::PoiUpdate u;
    u.kind = dynamic::PoiUpdate::Kind::kMove;
    u.id = poi.id;
    const double r = config.move_radius_mi;
    u.pos.x = ClampTo(poi.pos.x + rng.Uniform(-r, r), world.x1, world.x2);
    u.pos.y = ClampTo(poi.pos.y + rng.Uniform(-r, r), world.y1, world.y2);
    updates.push_back(u);
  }
  for (int i = 0; i < config.inserts_per_batch; ++i) {
    dynamic::PoiUpdate u;
    u.kind = dynamic::PoiUpdate::Kind::kInsert;
    u.id = base_insert_id +
           static_cast<int64_t>(batch_index - 1) * config.inserts_per_batch +
           i;
    u.pos.x = rng.Uniform(world.x1, world.x2);
    u.pos.y = rng.Uniform(world.y1, world.y2);
    updates.push_back(u);
  }
  return updates;
}

}  // namespace lbsq::sim
