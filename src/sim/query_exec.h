#ifndef LBSQ_SIM_QUERY_EXEC_H_
#define LBSQ_SIM_QUERY_EXEC_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/metrics_registry.h"
#include "common/observability.h"
#include "core/query_engine.h"
#include "core/query_workspace.h"
#include "core/sharded_query_engine.h"
#include "sim/config.h"
#include "sim/metrics.h"
#include "spatial/grid_index.h"

/// \file
/// Single-query execution and metric accounting shared by the sequential
/// and the parallel simulation engines. Each function is a pure computation
/// over immutable inputs (the query engine, a peer snapshot, positions),
/// so the parallel engine can call them from worker threads without locks;
/// the accumulate functions perform the metric updates in one fixed order,
/// so folding per-event results in event order yields bitwise-identical
/// `SimMetrics` — and byte-identical trace output — regardless of how
/// events were partitioned across threads.

namespace lbsq::sim {

/// The engine options a SimConfig prescribes (the one translation point
/// between simulation knobs and core query options).
core::EngineOptions EngineOptionsFromConfig(const SimConfig& config);

/// Result of one kNN query: the SBNN outcome, its oracle verdict, and the
/// pure on-air baseline cost (computed only for measured queries).
struct KnnQueryResult {
  core::SbnnOutcome outcome;
  /// Answer matches the brute-force oracle (distance-wise).
  bool exact = false;
  int64_t baseline_latency = 0;
  int64_t baseline_tuning = 0;
  /// Peer regions the defensive screen rejected (0 unless screening on).
  int64_t regions_rejected = 0;

  /// The placeholder outcome needs a valid heap capacity (>= 1); it is
  /// overwritten by ExecuteKnnQuery before anyone reads it.
  KnnQueryResult() : outcome(1) {}
};

/// Result of one window query (see KnnQueryResult).
struct WindowQueryResult {
  core::SbwqOutcome outcome;
  bool exact = false;
  int64_t baseline_latency = 0;
  int64_t baseline_tuning = 0;
  /// Peer regions the defensive screen rejected (0 unless screening on).
  int64_t regions_rejected = 0;
};

/// Runs SBNN through `engine` for one query, checks it against the
/// brute-force oracle (aborting via LBSQ_CHECK under `config.check_answers`
/// for exact-path answers; the check is waived while fault injection is
/// enabled, since degraded or peer-corrupted answers may legitimately
/// differ), and — when `measured` — prices the pure on-air baseline. A
/// non-null `trace` receives the query's span/counter events.
/// `query_id` is the global event index: it keys the per-query fault
/// streams (peer corruption and channel schedule), making fault outcomes
/// independent of thread count. Thread-safe: reads only immutable state
/// plus the caller's own `workspace` — pass one per worker thread to reuse
/// query scratch and the broadcast-cycle cover memo across events (null
/// falls back to transient buffers; results are bit-identical either way).
KnnQueryResult ExecuteKnnQuery(const SimConfig& config,
                               const core::QueryEngine& engine,
                               geom::Point pos, int k, int64_t slot,
                               std::vector<core::PeerData> peers,
                               bool measured, int64_t query_id = 0,
                               obs::TraceRecorder* trace = nullptr,
                               core::QueryWorkspace* workspace = nullptr);

/// Window-query counterpart of ExecuteKnnQuery.
WindowQueryResult ExecuteWindowQuery(const SimConfig& config,
                                     const core::QueryEngine& engine,
                                     const geom::Rect& window, int64_t slot,
                                     std::vector<core::PeerData> peers,
                                     bool measured, int64_t query_id = 0,
                                     obs::TraceRecorder* trace = nullptr,
                                     core::QueryWorkspace* workspace = nullptr);

/// Sharded-deployment counterpart of ExecuteKnnQuery (config.shards > 1):
/// the query runs through the multi-shard engine and its merged outcome is
/// checked against a brute-force oracle over `oracle_pois` — the *global*
/// POI set of the pinned epoch, which the sharded engine does not hold in
/// one place. The baseline is a peerless re-execution on the same sharded
/// deployment (the multi-channel on-air cost, with the merged latency = max
/// / tuning = sum conventions), priced only for measured queries. Fault
/// injection is structurally off at N > 1, so unlike the single-channel
/// path no peer corruption is applied. Thread-safe under one `workspace`
/// per worker.
KnnQueryResult ExecuteKnnQuery(const SimConfig& config,
                               const core::ShardedQueryEngine& engine,
                               const std::vector<spatial::Poi>& oracle_pois,
                               geom::Point pos, int k, int64_t slot,
                               std::vector<core::PeerData> peers, bool measured,
                               int64_t query_id, obs::TraceRecorder* trace,
                               core::ShardedQueryWorkspace& workspace);

/// Sharded-deployment counterpart of ExecuteWindowQuery.
WindowQueryResult ExecuteWindowQuery(
    const SimConfig& config, const core::ShardedQueryEngine& engine,
    const std::vector<spatial::Poi>& oracle_pois, const geom::Rect& window,
    int64_t slot, std::vector<core::PeerData> peers, bool measured,
    int64_t query_id, obs::TraceRecorder* trace,
    core::ShardedQueryWorkspace& workspace);

/// Records a measured kNN query into `metrics` (counters, resolved-by
/// breakdown, latency/tuning accumulators) in the canonical order. A
/// non-null `registry` additionally receives histogram observations
/// (`access_latency`, `tuning_time`, `access_latency_all`, `buckets_read`,
/// `buckets_skipped`, `baseline_latency`) and the resolved-by counters.
void AccumulateKnn(const KnnQueryResult& result, SimMetrics* metrics,
                   MetricsRegistry* registry = nullptr);

/// Records a measured window query into `metrics` (see AccumulateKnn; the
/// window-specific histogram is `residual_fraction`).
void AccumulateWindow(const WindowQueryResult& result, SimMetrics* metrics,
                      MetricsRegistry* registry = nullptr);

/// Breadth-first flood over the radio connectivity graph from `querier` up
/// to `hops` (1 = the paper's single-hop sharing), collecting the non-empty
/// shared data of every reached host via `share`. Returns the number of
/// reached hosts (including ones with nothing to share).
int GatherPeers(const spatial::GridIndex& peer_index,
                const std::vector<geom::Point>& positions, int64_t querier,
                double tx_range, int hops,
                const std::function<core::PeerData(int64_t)>& share,
                std::vector<core::PeerData>* out);

}  // namespace lbsq::sim

#endif  // LBSQ_SIM_QUERY_EXEC_H_
