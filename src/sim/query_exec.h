#ifndef LBSQ_SIM_QUERY_EXEC_H_
#define LBSQ_SIM_QUERY_EXEC_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "broadcast/system.h"
#include "core/sbnn.h"
#include "core/sbwq.h"
#include "sim/config.h"
#include "sim/metrics.h"
#include "spatial/grid_index.h"

/// \file
/// Single-query execution and metric accounting shared by the sequential
/// and the parallel simulation engines. Each function is a pure computation
/// over immutable inputs (the broadcast system, a peer snapshot, positions),
/// so the parallel engine can call them from worker threads without locks;
/// the accumulate functions perform the metric updates in one fixed order,
/// so folding per-event results in event order yields bitwise-identical
/// `SimMetrics` regardless of how events were partitioned across threads.

namespace lbsq::sim {

/// Result of one kNN query: the SBNN outcome, its oracle verdict, and the
/// pure on-air baseline cost (computed only for measured queries).
struct KnnQueryResult {
  core::SbnnOutcome outcome;
  /// Answer matches the brute-force oracle (distance-wise).
  bool exact = false;
  int64_t baseline_latency = 0;
  int64_t baseline_tuning = 0;

  /// The placeholder outcome needs a valid heap capacity (>= 1); it is
  /// overwritten by ExecuteKnnQuery before anyone reads it.
  KnnQueryResult() : outcome(1) {}
};

/// Result of one window query (see KnnQueryResult).
struct WindowQueryResult {
  core::SbwqOutcome outcome;
  bool exact = false;
  int64_t baseline_latency = 0;
  int64_t baseline_tuning = 0;
};

/// Runs SBNN for one query, checks it against the brute-force oracle
/// (aborting via LBSQ_CHECK under `config.check_answers` for exact-path
/// answers), and — when `measured` — prices the pure on-air baseline.
/// Thread-safe: reads only immutable state.
KnnQueryResult ExecuteKnnQuery(const SimConfig& config,
                               const broadcast::BroadcastSystem& system,
                               const geom::Rect& world, geom::Point pos, int k,
                               int64_t slot,
                               const std::vector<core::PeerData>& peers,
                               bool measured);

/// Window-query counterpart of ExecuteKnnQuery.
WindowQueryResult ExecuteWindowQuery(const SimConfig& config,
                                     const broadcast::BroadcastSystem& system,
                                     const geom::Rect& window, int64_t slot,
                                     const std::vector<core::PeerData>& peers,
                                     bool measured);

/// Records a measured kNN query into `metrics` (counters, resolved-by
/// breakdown, latency/tuning accumulators) in the canonical order.
void AccumulateKnn(const KnnQueryResult& result, SimMetrics* metrics);

/// Records a measured window query into `metrics` (see AccumulateKnn).
void AccumulateWindow(const WindowQueryResult& result, SimMetrics* metrics);

/// Breadth-first flood over the radio connectivity graph from `querier` up
/// to `hops` (1 = the paper's single-hop sharing), collecting the non-empty
/// shared data of every reached host via `share`. Returns the number of
/// reached hosts (including ones with nothing to share).
int GatherPeers(const spatial::GridIndex& peer_index,
                const std::vector<geom::Point>& positions, int64_t querier,
                double tx_range, int hops,
                const std::function<core::PeerData(int64_t)>& share,
                std::vector<core::PeerData>* out);

}  // namespace lbsq::sim

#endif  // LBSQ_SIM_QUERY_EXEC_H_
