#ifndef LBSQ_SIM_UPDATE_WORKLOAD_H_
#define LBSQ_SIM_UPDATE_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "dynamic/update_log.h"
#include "geom/rect.h"
#include "sim/config.h"
#include "spatial/poi.h"

/// \file
/// Deterministic POI-churn generation for the dynamic-world simulators.
/// Batch k is a pure function of (config, seed, k, the epoch-(k-1) POI
/// snapshot): victims are drawn from the snapshot by index, insert
/// identifiers are computed statelessly from the batch index, and all
/// randomness comes from the per-batch sub-stream
/// DeriveStreamSeed(DeriveStreamSeed(seed, kStreamUpdates), k). Both
/// engines therefore generate identical update sequences — and identical
/// epoch worlds — regardless of thread count.

namespace lbsq::sim {

/// First identifier handed to inserted POIs: one past the largest initial
/// id (0 for an empty world). Insert j of batch k (1-based batches) gets
/// `FirstInsertId(initial) + (k - 1) * inserts_per_batch + j`, so ids never
/// collide and never depend on how many earlier inserts survived deletion.
int64_t FirstInsertId(const std::vector<spatial::Poi>& initial);

/// Generates update batch `batch_index` (1-based; batch k produces epoch k)
/// against `snapshot`, the epoch-(k-1) POI database. Deletes and moves pick
/// victims uniformly from the snapshot without replacement (a batch never
/// deletes and moves the same POI); inserts are placed uniformly in
/// `world`; moves displace each axis by a uniform offset in
/// [-move_radius_mi, +move_radius_mi], clamped to `world`. `base_insert_id`
/// is FirstInsertId of the *initial* database, fixed for the whole run.
std::vector<dynamic::PoiUpdate> GenerateUpdateBatch(
    const UpdateWorkloadConfig& config, uint64_t seed, uint64_t batch_index,
    const std::vector<spatial::Poi>& snapshot, const geom::Rect& world,
    int64_t base_insert_id);

}  // namespace lbsq::sim

#endif  // LBSQ_SIM_UPDATE_WORKLOAD_H_
