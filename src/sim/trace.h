#ifndef LBSQ_SIM_TRACE_H_
#define LBSQ_SIM_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "geom/rect.h"
#include "sim/config.h"

/// \file
/// Recorded query workloads. A simulation run can record every query event
/// it samples (time, querying host, query parameters); the trace can be
/// saved as text, reloaded, and replayed against a simulator with the same
/// configuration, reproducing the run exactly — the basis for workload
/// regression tests and for comparing algorithm variants on identical
/// workloads.

namespace lbsq::sim {

/// One query of a recorded workload.
struct QueryEvent {
  /// Simulation time in minutes.
  double time_min = 0.0;
  /// The querying host.
  int64_t host = 0;
  /// kKnn or kWindow (never kMixed — mixing is resolved at record time).
  QueryType type = QueryType::kKnn;
  /// Number of neighbors (kNN events).
  int k = 0;
  /// Query window (window events).
  geom::Rect window;

  friend bool operator==(const QueryEvent& a, const QueryEvent& b) {
    return a.time_min == b.time_min && a.host == b.host && a.type == b.type &&
           a.k == b.k && a.window == b.window;
  }
};

/// Serializes a trace as text: a header line, then one event per line
/// (`K <time> <host> <k>` or `W <time> <host> <x1> <y1> <x2> <y2>`, with
/// round-trip-exact hex doubles).
std::string SerializeTrace(const std::vector<QueryEvent>& events);

/// Parses a serialized trace; returns false on any malformed content.
bool ParseTrace(const std::string& text, std::vector<QueryEvent>* out);

/// File convenience wrappers; return false on I/O or parse failure.
bool SaveTrace(const std::string& path, const std::vector<QueryEvent>& events);
bool LoadTrace(const std::string& path, std::vector<QueryEvent>* out);

}  // namespace lbsq::sim

#endif  // LBSQ_SIM_TRACE_H_
