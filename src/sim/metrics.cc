#include "sim/metrics.h"

#include <cstdio>

namespace lbsq::sim {

namespace {
double Pct(int64_t part, int64_t total) {
  return total == 0 ? 0.0 : 100.0 * static_cast<double>(part) /
                                static_cast<double>(total);
}
}  // namespace

double SimMetrics::PctVerified() const { return Pct(solved_verified, queries); }
double SimMetrics::PctApproximate() const {
  return Pct(solved_approximate, queries);
}
double SimMetrics::PctBroadcast() const {
  return Pct(solved_broadcast, queries);
}

double SimMetrics::PctAnswerErrors() const {
  return Pct(answer_errors, queries - solved_approximate);
}

double SimMetrics::MeanLatencyAllQueries() const {
  if (queries == 0) return 0.0;
  return broadcast_latency.sum() / static_cast<double>(queries);
}

std::string SimMetrics::ToString() const {
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "queries=%lld verified=%.1f%% approx=%.1f%% broadcast=%.1f%% "
                "avg_peers=%.1f bcast_latency=%.0f baseline_latency=%.0f",
                static_cast<long long>(queries), PctVerified(),
                PctApproximate(), PctBroadcast(), peers_per_query.mean(),
                broadcast_latency.mean(), baseline_latency.mean());
  return buffer;
}

}  // namespace lbsq::sim
