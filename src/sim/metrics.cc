#include "sim/metrics.h"

#include <cstdio>

namespace lbsq::sim {

namespace {
double Pct(int64_t part, int64_t total) {
  return total == 0 ? 0.0 : 100.0 * static_cast<double>(part) /
                                static_cast<double>(total);
}

constexpr uint64_t kFnvBasis = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;
}  // namespace

uint64_t DigestFold(uint64_t acc, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    acc = (acc ^ ((value >> (8 * i)) & 0xff)) * kFnvPrime;
  }
  return acc;
}

double SimMetrics::PctVerified() const { return Pct(solved_verified, queries); }
double SimMetrics::PctApproximate() const {
  return Pct(solved_approximate, queries);
}
double SimMetrics::PctBroadcast() const {
  return Pct(solved_broadcast, queries);
}

double SimMetrics::PctAnswerErrors() const {
  return Pct(answer_errors, queries - solved_approximate);
}

double SimMetrics::MeanLatencyAllQueries() const {
  if (queries == 0) return 0.0;
  return broadcast_latency.sum() / static_cast<double>(queries);
}

void SimMetrics::Merge(const SimMetrics& other) {
  queries += other.queries;
  solved_verified += other.solved_verified;
  solved_approximate += other.solved_approximate;
  solved_broadcast += other.solved_broadcast;
  answer_errors += other.answer_errors;
  approx_exact += other.approx_exact;
  degraded_queries += other.degraded_queries;
  fault_losses += other.fault_losses;
  fault_corruptions += other.fault_corruptions;
  fault_deadline_hits += other.fault_deadline_hits;
  regions_rejected += other.regions_rejected;
  updates_applied += other.updates_applied;
  epochs_published += other.epochs_published;
  regions_revalidated += other.regions_revalidated;
  regions_stale_rejected += other.regions_stale_rejected;
  // Digest merge keeps an untouched accumulator as the identity (the
  // event-order fold of the parallel engine relies on merging empty slots
  // being a no-op); otherwise the right-hand digest is folded in whole.
  if (other.answer_digest != kFnvBasis) {
    answer_digest = answer_digest == kFnvBasis
                        ? other.answer_digest
                        : DigestFold(answer_digest, other.answer_digest);
  }
  peers_per_query.Merge(other.peers_per_query);
  broadcast_latency.Merge(other.broadcast_latency);
  broadcast_tuning.Merge(other.broadcast_tuning);
  buckets_read.Merge(other.buckets_read);
  buckets_skipped.Merge(other.buckets_skipped);
  baseline_latency.Merge(other.baseline_latency);
  baseline_tuning.Merge(other.baseline_tuning);
  residual_fraction.Merge(other.residual_fraction);
  verified_per_query.Merge(other.verified_per_query);
}

bool operator==(const SimMetrics& a, const SimMetrics& b) {
  return a.queries == b.queries && a.solved_verified == b.solved_verified &&
         a.solved_approximate == b.solved_approximate &&
         a.solved_broadcast == b.solved_broadcast &&
         a.answer_errors == b.answer_errors &&
         a.approx_exact == b.approx_exact &&
         a.degraded_queries == b.degraded_queries &&
         a.fault_losses == b.fault_losses &&
         a.fault_corruptions == b.fault_corruptions &&
         a.fault_deadline_hits == b.fault_deadline_hits &&
         a.regions_rejected == b.regions_rejected &&
         a.updates_applied == b.updates_applied &&
         a.epochs_published == b.epochs_published &&
         a.regions_revalidated == b.regions_revalidated &&
         a.regions_stale_rejected == b.regions_stale_rejected &&
         a.answer_digest == b.answer_digest &&
         a.peers_per_query == b.peers_per_query &&
         a.broadcast_latency == b.broadcast_latency &&
         a.broadcast_tuning == b.broadcast_tuning &&
         a.buckets_read == b.buckets_read &&
         a.buckets_skipped == b.buckets_skipped &&
         a.baseline_latency == b.baseline_latency &&
         a.baseline_tuning == b.baseline_tuning &&
         a.residual_fraction == b.residual_fraction &&
         a.verified_per_query == b.verified_per_query;
}

std::string SimMetrics::ToString() const {
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "queries=%lld verified=%.1f%% approx=%.1f%% broadcast=%.1f%% "
                "avg_peers=%.1f bcast_latency=%.0f baseline_latency=%.0f",
                static_cast<long long>(queries), PctVerified(),
                PctApproximate(), PctBroadcast(), peers_per_query.mean(),
                broadcast_latency.mean(), baseline_latency.mean());
  return buffer;
}

}  // namespace lbsq::sim
