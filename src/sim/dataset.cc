#include "sim/dataset.h"

#include <bit>
#include <cstdlib>
#include <cstring>

#include "common/check.h"
#include "sim/metrics.h"

namespace lbsq::sim {

namespace {

bool ParseFlag(const char* arg, const char* name, std::string* value) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  if (arg[len] == '\0') {
    *value = "";
    return true;
  }
  if (arg[len] == '=') {
    *value = arg + len + 1;
    return true;
  }
  return false;
}

}  // namespace

void DatasetSpec::Validate() const {
  LBSQ_CHECK_GT(world_side_mi, 0.0);
  LBSQ_CHECK_GT(params.poi_number, 0.0);
  LBSQ_CHECK_GE(params.knn_k, 1.0);
  LBSQ_CHECK_GE(shards, 1);
}

void DatasetSpec::ApplyTo(SimConfig* config) const {
  Validate();
  config->params = params;
  config->world_side_mi = world_side_mi;
  config->seed = seed;
  config->shards = shards;
  config->use_filtering = use_filtering;
}

int64_t DatasetSpec::ScaledPoiCount() const {
  SimConfig config;
  ApplyTo(&config);
  return config.ScaledPoiCount();
}

uint64_t DatasetSpec::Digest() const {
  uint64_t acc = 1469598103934665603ull;  // FNV offset basis
  for (const char c : params.name) {
    acc = DigestFold(acc, static_cast<uint64_t>(static_cast<uint8_t>(c)));
  }
  acc = DigestFold(acc, std::bit_cast<uint64_t>(params.poi_number));
  acc = DigestFold(acc, std::bit_cast<uint64_t>(world_side_mi));
  acc = DigestFold(acc, seed);
  acc = DigestFold(acc, static_cast<uint64_t>(shards));
  return acc;
}

DatasetFlagResult ParseDatasetFlag(const char* arg, DatasetSpec* spec,
                                   std::string* error) {
  std::string value;
  if (ParseFlag(arg, "--params", &value)) {
    if (value == "la") {
      spec->params = LosAngelesCity();
    } else if (value == "suburbia") {
      spec->params = SyntheticSuburbia();
    } else if (value == "riverside") {
      spec->params = RiversideCounty();
    } else {
      *error = "unknown --params value '" + value +
               "' (expected la|suburbia|riverside)";
      return DatasetFlagResult::kError;
    }
    return DatasetFlagResult::kParsed;
  }
  if (ParseFlag(arg, "--world", &value)) {
    spec->world_side_mi = std::atof(value.c_str());
    if (spec->world_side_mi <= 0.0) {
      *error = "--world must be a positive side length in miles";
      return DatasetFlagResult::kError;
    }
    return DatasetFlagResult::kParsed;
  }
  if (ParseFlag(arg, "--seed", &value)) {
    spec->seed = static_cast<uint64_t>(std::atoll(value.c_str()));
    return DatasetFlagResult::kParsed;
  }
  if (ParseFlag(arg, "--shards", &value)) {
    spec->shards = std::atoi(value.c_str());
    if (spec->shards < 1) {
      *error = "--shards must be >= 1";
      return DatasetFlagResult::kError;
    }
    return DatasetFlagResult::kParsed;
  }
  if (ParseFlag(arg, "--pois", &value)) {
    spec->params.poi_number = std::atof(value.c_str());
    if (spec->params.poi_number <= 0.0) {
      *error = "--pois must be a positive full-scale POI count";
      return DatasetFlagResult::kError;
    }
    return DatasetFlagResult::kParsed;
  }
  if (ParseFlag(arg, "--k", &value)) {
    spec->params.knn_k = std::atof(value.c_str());
    if (spec->params.knn_k < 1.0) {
      *error = "--k must be >= 1";
      return DatasetFlagResult::kError;
    }
    return DatasetFlagResult::kParsed;
  }
  if (ParseFlag(arg, "--tx", &value)) {
    spec->params.tx_range_m = std::atof(value.c_str());
    return DatasetFlagResult::kParsed;
  }
  if (ParseFlag(arg, "--csize", &value)) {
    spec->params.csize = std::atoi(value.c_str());
    return DatasetFlagResult::kParsed;
  }
  if (ParseFlag(arg, "--window-pct", &value)) {
    spec->params.window_pct = std::atof(value.c_str());
    return DatasetFlagResult::kParsed;
  }
  if (ParseFlag(arg, "--no-filtering", &value)) {
    spec->use_filtering = false;
    return DatasetFlagResult::kParsed;
  }
  return DatasetFlagResult::kNotDatasetFlag;
}

const char* DatasetFlagsHelp() {
  return
      "  --params=la|suburbia|riverside   Table 3 parameter set (la)\n"
      "  --world=<miles>                  world side (3.0; 20 = full scale)\n"
      "  --seed=<n>                       POI-stream RNG seed (1)\n"
      "  --shards=<n>                     Hilbert-range broadcast channels "
      "(1)\n"
      "  --pois=<n>                       full-scale POI count override\n"
      "                                   (scaled by (world/20)^2)\n"
      "  --k=<mean>                       mean kNN k override\n"
      "  --tx=<meters>                    transmission range override\n"
      "  --csize=<pois>                   cache capacity override\n"
      "  --window-pct=<pct>               mean window size override\n"
      "  --no-filtering                   disable the 3.3.3 data filter\n";
}

}  // namespace lbsq::sim
