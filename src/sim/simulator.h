#ifndef LBSQ_SIM_SIMULATOR_H_
#define LBSQ_SIM_SIMULATOR_H_

#include <memory>
#include <vector>

#include "broadcast/system.h"
#include "common/metrics_registry.h"
#include "common/observability.h"
#include "common/rng.h"
#include "core/peer_cache.h"
#include "core/query_engine.h"
#include "core/query_workspace.h"
#include "core/sharded_query_engine.h"
#include "dynamic/sharded_world.h"
#include "dynamic/world_versioner.h"
#include "sim/config.h"
#include "sim/metrics.h"
#include "sim/mobility.h"
#include "sim/trace.h"
#include "spatial/grid_index.h"
#include "spatial/rtree.h"

/// \file
/// The end-to-end simulation of the paper's §4.1 system model: a base
/// station continuously broadcasting the Hilbert-organized POI database
/// with a (1, m) air index, and a fleet of mobile hosts moving by random
/// waypoint, issuing kNN or window queries at Poisson times, first trying
/// their single-hop peers (SBNN / SBWQ) and falling back to the broadcast
/// channel.
///
/// This is the sequential reference engine: events execute strictly in time
/// order, each against the live caches of every peer. The parallel engine
/// (sim/parallel_simulator.h) shards the same workload across worker
/// threads; with `events_per_epoch = 1` it reproduces this engine's metrics
/// bit-for-bit (the differential test in tests/parallel_sim_test.cc holds
/// the two to that contract).

namespace lbsq::sim {

/// One simulation instance. Construct, Run() once, read the metrics.
class Simulator {
 public:
  explicit Simulator(const SimConfig& config);

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Attaches run-level observability (may be null to disable either part):
  /// `trace_sink` receives every measured query's span/counter events in
  /// global event order; `registry` receives histogram observations and
  /// resolved-by counters for every measured query. Call before Run().
  void SetObserver(obs::TraceSink* trace_sink, MetricsRegistry* registry);

  /// Executes the configured run and returns post-warm-up metrics.
  SimMetrics Run();

  /// Replays a recorded workload (typically from a prior Run() with
  /// record_trace set on a simulator with the same configuration and seed;
  /// mobility and the POI set are reconstructed from the seed, so a replay
  /// of a recording reproduces its metrics exactly). With updates enabled
  /// the replay must start from a *fresh* simulator (epoch 0): update
  /// batches regenerate from the event index, so a pre-advanced world would
  /// diverge from the recording.
  SimMetrics Replay(const std::vector<QueryEvent>& events);

  /// Events recorded by the last Run() under record_trace.
  const std::vector<QueryEvent>& trace() const { return trace_; }

  /// The broadcast channel of the currently pinned epoch (epoch 0 — the
  /// full static world — unless updates are enabled and have fired).
  /// Single-channel deployments only (config.shards == 1).
  const broadcast::BroadcastSystem& system() const {
    return *current_->system;
  }
  /// The simulated world rectangle.
  const geom::Rect& world() const { return world_; }
  /// Host caches (for inspection in tests).
  const std::vector<core::PeerCache>& caches() const { return caches_; }
  /// The query engine of the currently pinned epoch (shards == 1 only).
  const core::QueryEngine& engine() const { return *current_->engine; }
  /// The epoch store (epoch 0 only when updates are disabled); shards == 1
  /// only.
  const dynamic::WorldVersioner& versioner() const { return *versioner_; }
  /// The sharded world (null unless config.shards > 1).
  const dynamic::ShardedWorld* sharded_world() const {
    return sharded_world_.get();
  }

 private:
  /// Positions every host at time `t`, refreshes the peer index, gathers
  /// the querier's peers, and dispatches the event. `query_id` is the
  /// event's global workload index (the trace key).
  void ExecuteEvent(const QueryEvent& event, int64_t query_id,
                    SimMetrics* metrics);

  /// Applies the deterministic update batch due before event `event_index`
  /// (a no-op unless updates are enabled and the index is a nonzero
  /// multiple of the configured interval) and re-pins the published epoch.
  void MaybeApplyUpdates(size_t event_index, double event_time_min,
                         SimMetrics* metrics);

  /// Validates the cache completeness invariant of `host` against the
  /// server database (check_cache_invariant mode). Under churn each entry
  /// is checked against the snapshot of its *own* epoch — completeness is
  /// an epoch-relative guarantee.
  void CheckCacheInvariant(int64_t host) const;

  SimConfig config_;
  geom::Rect world_;
  /// Single-channel deployment (config.shards == 1): the epoch store and
  /// the pinned epoch every event executes against (re-pinned after each
  /// update batch). Null at shards > 1.
  std::unique_ptr<dynamic::WorldVersioner> versioner_;
  std::shared_ptr<const dynamic::WorldEpoch> current_;
  /// Sharded deployment (config.shards > 1): the sharded epoch store, its
  /// pinned epoch, and the multi-shard query scratch. Null at shards == 1.
  std::unique_ptr<dynamic::ShardedWorld> sharded_world_;
  std::shared_ptr<const dynamic::ShardedEpoch> sharded_current_;
  core::ShardedQueryWorkspace sharded_workspace_;
  /// First id handed to inserted POIs (fixed at construction).
  int64_t base_insert_id_ = 0;
  spatial::RTree server_index_;
  std::unique_ptr<MobilityModel> mobility_;
  std::vector<core::PeerCache> caches_;
  spatial::GridIndex peer_index_;
  std::vector<geom::Point> positions_;
  std::vector<QueryEvent> trace_;
  double tx_range_mi_;
  obs::TraceSink* trace_sink_ = nullptr;
  MetricsRegistry* registry_ = nullptr;
  obs::TraceRecorder recorder_;
  /// Reused query scratch + broadcast-cycle cover memo for every event this
  /// (single-threaded) engine executes.
  core::QueryWorkspace workspace_;
};

}  // namespace lbsq::sim

#endif  // LBSQ_SIM_SIMULATOR_H_
